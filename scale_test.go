package rankfair_test

import (
	"testing"
	"time"

	"rankfair"
	"rankfair/internal/synth"
)

// TestFullScaleCOMPAS runs the optimized algorithms at the paper's full
// dataset size (6,889 rows, 16 attributes) and default parameters, the
// workload behind Figures 4-9's rightmost points. It guards against
// regressions that only show up at scale.
func TestFullScaleCOMPAS(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	b := synth.COMPAS(synth.DefaultCOMPASRows, 1)
	a, err := rankfair.New(b.Table, b.Ranker)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	global, err := a.DetectGlobal(rankfair.GlobalParams{
		MinSize: 50, KMin: 10, KMax: 49,
		Lower: rankfair.StaircaseBounds(10, 49, 10, 10, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	globalDur := time.Since(start)

	start = time.Now()
	prop, err := a.DetectProportional(rankfair.PropParams{
		MinSize: 50, KMin: 10, KMax: 49, Alpha: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	propDur := time.Since(start)

	if global.TotalGroups() == 0 || prop.TotalGroups() == 0 {
		t.Errorf("full-scale run found no groups: global=%d prop=%d",
			global.TotalGroups(), prop.TotalGroups())
	}
	// The paper's Python baseline needed a 10-minute budget per sweep
	// point; a single optimized run at default parameters must stay far
	// under that on any machine this test runs on.
	if globalDur > time.Minute || propDur > 5*time.Minute {
		t.Errorf("full-scale runs too slow: global=%v prop=%v", globalDur, propDur)
	}
	// Per-k result sets stay reviewable (the Section III observation).
	for k := 10; k <= 49; k++ {
		if len(global.At(k)) >= 1000 {
			t.Errorf("k=%d: %d groups", k, len(global.At(k)))
		}
	}
	t.Logf("full-scale COMPAS: global %v (%d groups), prop %v (%d groups)",
		globalDur, global.TotalGroups(), propDur, prop.TotalGroups())
}
