// COMPAS-style audit: run both detection algorithms on a recidivism-score
// ranking, then contrast the output with the divergence-based method of
// Pastor et al. (the paper's Section VI-D comparison): most-general
// detection yields a handful of concise groups; divergence mining returns
// a long list full of mutually subsumed subgroups.
//
// Run with:
//
//	go run ./examples/audit_compas
package main

import (
	"fmt"
	"log"

	"rankfair"
	"rankfair/internal/synth"
)

func main() {
	bundle := synth.COMPAS(3000, 11)
	analyst, err := rankfair.New(bundle.Table, bundle.Ranker)
	check(err)

	k := 49

	// The paper's Figure 10b setting: global bounds with a demanding
	// lower bound at k=49.
	report, err := analyst.DetectGlobal(rankfair.GlobalParams{
		MinSize: 50, KMin: k, KMax: k,
		Lower: rankfair.ConstantBounds(k, k, 40),
	})
	check(err)
	fmt.Printf("groups with fewer than 40 of the top %d (τs=50): %d found\n", k, len(report.At(k)))
	for i, g := range report.At(k) {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(report.At(k))-8)
			break
		}
		fmt.Printf("  %s\n", report.Format(g))
	}

	// Explain the paper's case-study group p2 = {age < 35} (Figure 10b/10e).
	young, err := analyst.Bind(analyst.EmptyPattern(), "age", "<35")
	check(err)
	expl, err := analyst.Explain(young, k, rankfair.ExplainOptions{Seed: 11})
	check(err)
	fmt.Printf("\naggregated Shapley values for %s (%d people):\n", analyst.Format(young), expl.GroupSize)
	for _, s := range expl.Shapley {
		fmt.Printf("  %-26s %+9.2f\n", s.Name, s.Value)
	}
	fmt.Println()
	fmt.Print(expl.Comparison.Render())

	// Contrast with the divergence method: same support threshold, same k.
	div, err := analyst.Divergence(rankfair.DivergenceParams{
		MinSupport: 50.0 / 3000.0, K: k,
	})
	check(err)
	fmt.Printf("\ndivergence method of Pastor et al.: %d subgroups returned\n", len(div.Groups))
	fmt.Println("most negative divergence (most under-exposed):")
	for i := len(div.Groups) - 1; i >= len(div.Groups)-3 && i >= 0; i-- {
		g := div.Groups[i]
		fmt.Printf("  %s (size %d, δ=%+.4f)\n", analyst.Format(g.Pattern), g.Size, g.Divergence)
	}
	fmt.Printf("\nmost-general detection reported %d groups; divergence mining %d —\n",
		len(report.At(k)), len(div.Groups))
	fmt.Println("the paper's point: concise most-general output vs exhaustive subsumed lists.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
