// Package stream implements the ingestion substrate of the streaming
// append subsystem: decoding row batches (CSV or JSON) into a canonical
// CSV form, and the cost model that chooses between the incremental
// maintenance path and a full rebuild.
//
// The canonical form is the load-bearing design decision. A dataset
// generation is defined by its raw CSV bytes (the registry hashes them, a
// fresh upload of the same bytes lands on the same content hash), so an
// append batch — whatever wire shape it arrived in — is first rendered to
// the CSV bytes that will be appended to the generation's raw form, and
// the records handed to the table layer are then *re-parsed from those
// bytes* with the same encoding/csv reader a fresh upload would use. That
// round trip guarantees the in-memory records can never drift from what a
// re-decode of the concatenated CSV produces (quoting, CRLF normalization
// inside quoted fields, empty-line skipping), which is what makes
// append-then-audit byte-identical to fresh-upload-then-audit.
package stream

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"

	"rankfair/internal/dataset"
)

// Batch is one decoded append batch.
type Batch struct {
	// Records holds the rows exactly as a CSV re-decode of Raw yields them,
	// one string per column in the dataset's column order.
	Records [][]string
	// Raw is the canonical CSV encoding of the batch (no header), ready to
	// be appended to the generation's raw bytes.
	Raw []byte
}

// Rows returns the number of rows in the batch.
func (b *Batch) Rows() int { return len(b.Records) }

// ParseCSV decodes a headerless CSV batch against the table's schema.
// comma is the dataset's configured field delimiter (0 means ',').
func ParseCSV(data []byte, t *dataset.Table, comma rune) (*Batch, error) {
	raw := ensureTrailingNewline(data)
	records, err := decodeRaw(raw, t, comma)
	if err != nil {
		return nil, err
	}
	return &Batch{Records: records, Raw: raw}, nil
}

// ParseJSON decodes a JSON batch against the table's schema. Two shapes
// are accepted: a bare array of rows, or {"rows": [...]}; each row is
// either an array of values in column order or an object keyed by column
// name. Scalar values may be strings, numbers or booleans; numbers keep
// their literal form (json.Number), so "1.5e3" survives to the CSV layer
// untouched. The rows are rendered to canonical CSV and re-parsed, so the
// returned records match a fresh decode of the concatenated bytes exactly.
func ParseJSON(data []byte, t *dataset.Table, comma rune) (*Batch, error) {
	rows, err := decodeJSONRows(data)
	if err != nil {
		return nil, err
	}
	cols := t.Columns()
	records := make([][]string, len(rows))
	for i, row := range rows {
		rec, err := jsonRowToRecord(row, t, cols)
		if err != nil {
			return nil, fmt.Errorf("stream: row %d: %w", i, err)
		}
		records[i] = rec
	}
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if comma != 0 {
		w.Comma = comma
	}
	if err := w.WriteAll(records); err != nil {
		return nil, fmt.Errorf("stream: encoding batch: %w", err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, fmt.Errorf("stream: encoding batch: %w", err)
	}
	raw := buf.Bytes()
	// Round-trip: hand out what a re-decode of the raw form yields, not
	// what we think we wrote (csv normalizes CRLF inside quoted fields).
	reparsed, err := decodeRaw(raw, t, comma)
	if err != nil {
		return nil, err
	}
	return &Batch{Records: reparsed, Raw: raw}, nil
}

// decodeRaw parses canonical batch bytes, enforcing the table's arity.
func decodeRaw(raw []byte, t *dataset.Table, comma rune) ([][]string, error) {
	r := csv.NewReader(bytes.NewReader(raw))
	if comma != 0 {
		r.Comma = comma
	}
	r.FieldsPerRecord = t.NumCols()
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stream: decoding batch: %w", err)
	}
	return records, nil
}

// decodeJSONRows unwraps the accepted JSON envelopes into raw row values.
func decodeJSONRows(data []byte) ([]json.RawMessage, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var envelope struct {
		Rows []json.RawMessage `json:"rows"`
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var rows []json.RawMessage
		if err := dec.Decode(&rows); err != nil {
			return nil, fmt.Errorf("stream: decoding batch: %w", err)
		}
		return rows, nil
	}
	if err := dec.Decode(&envelope); err != nil {
		return nil, fmt.Errorf("stream: decoding batch: %w", err)
	}
	if envelope.Rows == nil {
		return nil, fmt.Errorf(`stream: batch has no "rows" array`)
	}
	return envelope.Rows, nil
}

// jsonRowToRecord renders one JSON row (array or object form) as a CSV
// record in column order.
func jsonRowToRecord(row json.RawMessage, t *dataset.Table, cols []*dataset.Column) ([]string, error) {
	trimmed := bytes.TrimLeft(row, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty row")
	}
	rec := make([]string, len(cols))
	if trimmed[0] == '[' {
		var vals []json.RawMessage
		if err := unmarshalNumber(row, &vals); err != nil {
			return nil, err
		}
		if len(vals) != len(cols) {
			return nil, fmt.Errorf("%d values for %d columns", len(vals), len(cols))
		}
		for j, v := range vals {
			s, err := scalarString(v)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", cols[j].Name, err)
			}
			rec[j] = s
		}
		return rec, nil
	}
	var obj map[string]json.RawMessage
	if err := unmarshalNumber(row, &obj); err != nil {
		return nil, err
	}
	if len(obj) != len(cols) {
		return nil, fmt.Errorf("%d fields for %d columns", len(obj), len(cols))
	}
	for j, c := range cols {
		v, ok := obj[c.Name]
		if !ok {
			return nil, fmt.Errorf("missing column %q", c.Name)
		}
		s, err := scalarString(v)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", c.Name, err)
		}
		rec[j] = s
	}
	return rec, nil
}

// unmarshalNumber decodes with number literals preserved.
func unmarshalNumber(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(v)
}

// scalarString renders one JSON scalar as its CSV cell.
func scalarString(raw json.RawMessage) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return "", err
	}
	switch x := v.(type) {
	case string:
		return x, nil
	case json.Number:
		return x.String(), nil
	case bool:
		return strconv.FormatBool(x), nil
	default:
		return "", fmt.Errorf("unsupported value %s (want string, number or bool)", raw)
	}
}

// ensureTrailingNewline returns data terminated by a newline, so appending
// further batches later starts on a fresh record boundary.
func ensureTrailingNewline(data []byte) []byte {
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return data
	}
	out := make([]byte, 0, len(data)+1)
	out = append(out, data...)
	return append(out, '\n')
}

// Concat joins a generation's raw CSV bytes with a batch's canonical raw
// form, inserting the record-boundary newline a truncated upload may lack.
// The result is exactly the bytes a client would have uploaded fresh, which
// is why the appended generation's content hash equals the fresh upload's.
func Concat(oldRaw, batchRaw []byte) []byte {
	base := ensureTrailingNewline(oldRaw)
	out := make([]byte, 0, len(base)+len(batchRaw))
	out = append(out, base...)
	return append(out, batchRaw...)
}

// DefaultRebuildFraction is the batch/base row ratio at which the cost
// model flips from incremental maintenance to a full rebuild.
const DefaultRebuildFraction = 0.25

// CostModel decides, per batch, whether the incremental path can be
// expected to beat a rebuild. The incremental path costs O(n + b·attrs)
// plus one posting-list copy per value the batch perturbs; the rebuild
// costs a full CSV re-decode, an O(n log n) re-rank and an O(n·attrs)
// index build. Small batches win incrementally by a wide margin
// (BenchmarkStreamAppend); once b grows comparable to n the incremental
// path degenerates into a rebuild with extra bookkeeping, so the model
// cuts over on the row ratio.
type CostModel struct {
	// RebuildFraction is the b/n ratio at or above which the append
	// rebuilds; 0 selects DefaultRebuildFraction, negative disables the
	// incremental path entirely (every append rebuilds).
	RebuildFraction float64
}

// Mode names the chosen append path; the values appear in API responses
// and metrics.
type Mode string

const (
	// ModeIncremental applies the batch as a delta: ranking merge-insert,
	// copy-on-write posting maintenance, warm analyst promotion.
	ModeIncremental Mode = "incremental"
	// ModeRebuild re-decodes the concatenated CSV and rebuilds derived
	// state from scratch.
	ModeRebuild Mode = "rebuild"
)

// Decide picks the append path for a batch of batchRows against a base of
// baseRows. Callers overlay structural constraints on top (schema drift
// and non-incremental rankers force ModeRebuild regardless).
func (c CostModel) Decide(baseRows, batchRows int) Mode {
	frac := c.RebuildFraction
	if frac < 0 {
		return ModeRebuild
	}
	if frac == 0 {
		frac = DefaultRebuildFraction
	}
	if baseRows <= 0 || float64(batchRows) >= frac*float64(baseRows) {
		return ModeRebuild
	}
	return ModeIncremental
}
