package obs

import (
	"crypto/sha256"
	"encoding/hex"
)

// W3C Trace Context identity (https://www.w3.org/TR/trace-context/):
// a trace ID is 16 bytes rendered as 32 lowercase hex characters, a span
// ID 8 bytes rendered as 16. rankfaird derives both deterministically
// from correlation IDs it already owns (the X-Request-ID, the job ID)
// instead of carrying a random source: the same request always maps to
// the same trace identity, which keeps golden exports and restart
// byte-identity tests reproducible, and a client that *does* send a
// traceparent header wins outright — its IDs are adopted verbatim so
// spans stitch across processes.

const (
	traceIDHexLen = 32
	spanIDHexLen  = 16
)

// ParseTraceparent extracts the trace ID and parent span ID from a W3C
// traceparent header value ("00-<32 hex>-<16 hex>-<2 hex flags>"). It
// accepts only version 00 with well-formed, non-zero IDs; anything else
// reports ok=false and the caller falls back to derived identity.
func ParseTraceparent(header string) (traceID, spanID string, ok bool) {
	// version(2) '-' traceID(32) '-' spanID(16) '-' flags(2)
	if len(header) != 2+1+traceIDHexLen+1+spanIDHexLen+1+2 {
		return "", "", false
	}
	if header[0] != '0' || header[1] != '0' {
		return "", "", false // version 00 only; ff is explicitly invalid
	}
	if header[2] != '-' || header[3+traceIDHexLen] != '-' || header[4+traceIDHexLen+spanIDHexLen] != '-' {
		return "", "", false
	}
	traceID = header[3 : 3+traceIDHexLen]
	spanID = header[4+traceIDHexLen : 4+traceIDHexLen+spanIDHexLen]
	flags := header[5+traceIDHexLen+spanIDHexLen:]
	if !isLowerHex(traceID) || !isLowerHex(spanID) || !isLowerHex(flags) {
		return "", "", false
	}
	if isAllZero(traceID) || isAllZero(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

// FormatTraceparent renders a traceparent header value with the sampled
// flag set — rankfaird records every trace it finishes, so exported spans
// are always worth the downstream hop keeping.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// DeriveTraceID maps an arbitrary correlation string (an X-Request-ID, a
// job ID) onto a well-formed non-zero trace ID: the first 16 bytes of its
// SHA-256. Deterministic by design — see the package comment above.
func DeriveTraceID(seed string) string {
	sum := sha256.Sum256([]byte("trace\x00" + seed))
	return hex.EncodeToString(sum[:16])
}

// DeriveSpanID maps (trace ID, span discriminator) onto a well-formed
// span ID: the first 8 bytes of their joint SHA-256. Discriminators are
// unique within a trace (span sequence numbers, request nonces), so span
// IDs never collide inside one trace.
func DeriveSpanID(traceID, discriminator string) string {
	sum := sha256.Sum256([]byte("span\x00" + traceID + "\x00" + discriminator))
	return hex.EncodeToString(sum[:8])
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isAllZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
