package count

import (
	"fmt"
	"testing"
)

// benchSinkInt / benchSinkRanks keep benchmark results live so the
// compiler cannot elide the measured work.
var (
	benchSinkInt   int
	benchSinkRanks []int32
)

// BenchmarkBitmapIntersect is the dense-intersection microbench behind the
// bitmap strategy's cost model: the same two posting lists intersected by
// the galloping slice merge (IntersectInto, the lists/index engines' pass)
// and by the word-wise AND + popcount bitmap kernels, across densities.
// stride=2 is the dense regime the bitmapPassMin cut targets; stride=32
// approaches the sparse crossover where the slice walk stays competitive.
func BenchmarkBitmapIntersect(b *testing.B) {
	const n = 1 << 17 // rank universe: two containers
	for _, stride := range []int{2, 8, 32} {
		a := make([]int32, 0, n/stride+1)
		c := make([]int32, 0, n/stride+1)
		for r := 0; r < n; r += stride {
			a = append(a, int32(r))
			c = append(c, int32(r+r%3)) // ~1/3 overlap with a
		}
		bmA, bmC := BitmapFromRanks(a), BitmapFromRanks(c)
		dst := make([]int32, 0, len(a))
		b.Run(fmt.Sprintf("slice-intersect/stride=%d", stride), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = IntersectInto(dst[:0], a, c)
			}
			benchSinkRanks = dst
		})
		b.Run(fmt.Sprintf("bitmap-and/stride=%d", stride), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = bmA.And(bmC).AppendRanks(dst[:0])
			}
			benchSinkRanks = dst
		})
		b.Run(fmt.Sprintf("bitmap-and-card/stride=%d", stride), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSinkInt = bmA.AndCardinality(bmC)
			}
		})
		b.Run(fmt.Sprintf("bitmap-card-below/stride=%d", stride), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSinkInt = bmA.AndCardinalityBelow(bmC, n/2)
			}
		})
	}
}
