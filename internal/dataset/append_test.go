package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const appendBaseCSV = "city,score,tier\nparis,1.5,A\nlyon,2,B\nparis,0.25,A\n"

// TestAppendRowsMatchesFreshDecode is the core equivalence the streaming
// subsystem rests on: appending drift-free rows must produce the exact
// table a fresh decode of the concatenated CSV produces.
func TestAppendRowsMatchesFreshDecode(t *testing.T) {
	base, err := ReadCSV(strings.NewReader(appendBaseCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	records := [][]string{
		{"lyon", "3.75", "A"},
		{"paris", "-2", "B"},
	}
	got, err := base.AppendRows(records)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ReadCSV(strings.NewReader(appendBaseCSV+"lyon,3.75,A\nparis,-2,B\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, got, fresh)

	// The receiver is untouched: same row count, same codes.
	if base.NumRows() != 3 {
		t.Fatalf("base mutated: %d rows", base.NumRows())
	}
	var bbuf, obuf bytes.Buffer
	if err := WriteCSV(&bbuf, base); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadCSV(strings.NewReader(appendBaseCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&obuf, reread); err != nil {
		t.Fatal(err)
	}
	if bbuf.String() != obuf.String() {
		t.Fatal("append mutated the parent table")
	}
}

// assertTablesEqual compares two tables structurally: columns, kinds,
// dictionaries, codes and floats.
func assertTablesEqual(t *testing.T, got, want *Table) {
	t.Helper()
	if got.NumCols() != want.NumCols() || got.NumRows() != want.NumRows() {
		t.Fatalf("shape: got %dx%d, want %dx%d", got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for j := 0; j < want.NumCols(); j++ {
		gc, wc := got.Column(j), want.Column(j)
		if gc.Name != wc.Name || gc.Kind != wc.Kind {
			t.Fatalf("column %d: got (%s,%s), want (%s,%s)", j, gc.Name, gc.Kind, wc.Name, wc.Kind)
		}
		switch wc.Kind {
		case Categorical:
			if len(gc.Dict) != len(wc.Dict) {
				t.Fatalf("column %q: dict size %d vs %d", wc.Name, len(gc.Dict), len(wc.Dict))
			}
			for i := range wc.Dict {
				if gc.Dict[i] != wc.Dict[i] {
					t.Fatalf("column %q: dict[%d] %q vs %q", wc.Name, i, gc.Dict[i], wc.Dict[i])
				}
			}
			for i := range wc.Codes {
				if gc.Codes[i] != wc.Codes[i] {
					t.Fatalf("column %q row %d: code %d vs %d", wc.Name, i, gc.Codes[i], wc.Codes[i])
				}
			}
		case Numeric:
			for i := range wc.Floats {
				if gc.Floats[i] != wc.Floats[i] {
					t.Fatalf("column %q row %d: %v vs %v", wc.Name, i, gc.Floats[i], wc.Floats[i])
				}
			}
		}
	}
}

func TestAppendRowsSchemaDrift(t *testing.T) {
	base, err := ReadCSV(strings.NewReader(appendBaseCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// New categorical label.
	if _, err := base.AppendRows([][]string{{"nice", "1", "A"}}); !errors.Is(err, ErrSchemaDrift) {
		t.Fatalf("new label: got %v, want ErrSchemaDrift", err)
	}
	// Non-numeric value in a numeric column.
	if _, err := base.AppendRows([][]string{{"paris", "n/a", "A"}}); !errors.Is(err, ErrSchemaDrift) {
		t.Fatalf("bad numeric: got %v, want ErrSchemaDrift", err)
	}
	// Wrong arity is a hard error, not drift.
	if _, err := base.AppendRows([][]string{{"paris", "1"}}); err == nil || errors.Is(err, ErrSchemaDrift) {
		t.Fatalf("arity: got %v, want non-drift error", err)
	}
}

func TestCatRowsFrom(t *testing.T) {
	base, err := ReadCSV(strings.NewReader(appendBaseCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, _, _ := base.CatMatrix()
	for _, from := range []int{0, 1, 3, 5, -1} {
		tail := base.CatRowsFrom(from)
		start := from
		if start < 0 {
			start = 0
		}
		wantLen := base.NumRows() - start
		if wantLen < 0 {
			wantLen = 0
		}
		if len(tail) != wantLen {
			t.Fatalf("from=%d: %d rows, want %d", from, len(tail), wantLen)
		}
		for i, row := range tail {
			for a := range row {
				if row[a] != full[start+i][a] {
					t.Fatalf("from=%d row %d attr %d: %d vs %d", from, i, a, row[a], full[start+i][a])
				}
			}
		}
	}
}
