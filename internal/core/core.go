// Package core implements the paper's primary contribution: detection of
// groups (patterns) with biased representation in the top-k ranked items,
// for every k in a range, without pre-defining protected groups.
//
// It provides:
//
//   - ITERTD (Section IV-A): the baseline that re-runs the top-down search
//     of Algorithm 1 for every k, for both fairness measures.
//   - GLOBALBOUNDS (Algorithm 2, Section IV-B): the optimized incremental
//     algorithm for global representation bounds (Problem 3.1).
//   - PROPBOUNDS (Algorithm 3, Section IV-C): the optimized incremental
//     algorithm for proportional representation (Problem 3.2).
//   - Upper-bound variants (Section III, "Upper bounds"): most-specific
//     substantial patterns exceeding an upper bound.
//
// All algorithms treat the ranking as a black box: they consume only a
// permutation of row indices (best first) and the categorical encoding of
// the dataset.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"

	"rankfair/internal/count"
	"rankfair/internal/pattern"
)

// Pattern is re-exported for convenience so callers of the detection
// algorithms do not need to import internal/pattern separately.
type Pattern = pattern.Pattern

// Input bundles the dataset view consumed by every detection algorithm.
type Input struct {
	// Rows is the dictionary-encoded categorical matrix of the dataset
	// (one slice per tuple, one entry per attribute).
	Rows [][]int32
	// Space describes the attributes of Rows.
	Space *pattern.Space
	// Ranking is a permutation of row indices, best first, produced by the
	// black-box ranking algorithm R.
	Ranking []int
	// Index is an optional pre-built rank index over (Rows, Space, Ranking).
	// When attached — the Analyst threads its lazily built counting engine
	// here — the rank-space search strategy starts with zero setup scans;
	// the caller is responsible for the index actually describing this
	// input (only the row count is validated).
	Index *count.Index
	// Strategy selects the match-set engine of the lattice search; see the
	// Strategy constants. The default StrategyAuto applies a cost model.
	// Results are byte-identical across strategies.
	Strategy Strategy
	// DisableStats turns off the per-run SearchStats accounting: searches
	// leave Result.Search nil and skip every counter increment. Groups and
	// Stats are byte-identical either way (TestStatsInvariance guards
	// this); the knob exists for overhead measurement and for callers that
	// want the last fraction of a percent back. Set it before sharing the
	// input across goroutines, like every other Input field.
	DisableStats bool

	// validated memoizes a successful Validate: repeated searches over one
	// input (the Analyst serving path runs many audits against one dataset)
	// skip the O(n·attrs) re-validation, which otherwise dominates light
	// searches. The flag is set before any fan-out — validate an input once
	// before sharing it across goroutines (the Analyst constructor does) —
	// and callers must not mutate a validated input's rows or ranking.
	validated bool
}

// Validate checks structural consistency of the input. A successful
// validation is memoized on the input, so the per-search re-check is one
// flag read.
func (in *Input) Validate() error {
	if in == nil {
		return errors.New("core: nil input")
	}
	// The index consistency check is O(1), so it stays ahead of the memo:
	// an index attached (or swapped) after a successful validation is still
	// caught rather than silently driving the rank-space search.
	if in.Index != nil && in.Index.NumRows() != len(in.Rows) {
		return fmt.Errorf("core: attached index covers %d rows, input has %d", in.Index.NumRows(), len(in.Rows))
	}
	if in.validated {
		return nil
	}
	if in.Space == nil {
		return errors.New("core: nil space")
	}
	n := in.Space.NumAttrs()
	if n == 0 {
		return errors.New("core: space has no attributes")
	}
	if len(in.Space.Names) != n {
		return fmt.Errorf("core: %d attribute names for %d cardinalities", len(in.Space.Names), n)
	}
	for i, c := range in.Space.Cards {
		if c < 1 {
			return fmt.Errorf("core: attribute %d has cardinality %d", i, c)
		}
	}
	for i, r := range in.Rows {
		if len(r) != n {
			return fmt.Errorf("core: row %d has %d attributes, want %d", i, len(r), n)
		}
		for j, v := range r {
			if v < 0 || int(v) >= in.Space.Cards[j] {
				return fmt.Errorf("core: row %d attribute %d: value %d out of domain [0,%d)", i, j, v, in.Space.Cards[j])
			}
		}
	}
	if len(in.Ranking) != len(in.Rows) {
		return fmt.Errorf("core: ranking has %d entries for %d rows", len(in.Ranking), len(in.Rows))
	}
	seen := make([]bool, len(in.Rows))
	for _, ri := range in.Ranking {
		if ri < 0 || ri >= len(seen) || seen[ri] {
			return fmt.Errorf("core: ranking is not a permutation (index %d)", ri)
		}
		seen[ri] = true
	}
	in.validated = true
	return nil
}

// ValidateAppend validates in as an append extension of an already
// validated parent input and memoizes the result, in O(n + b·attrs)
// instead of Validate's O(n·attrs): the shared row prefix is checked by
// slice identity (the streaming append path aliases the parent's row
// slices rather than re-encoding them), so only the appended rows' domains
// and the new ranking permutation need examining. It is the validation
// step of the streaming ingestion path; anything it cannot prove cheaply
// it rejects, and the caller falls back to a full Validate via a fresh
// build.
func (in *Input) ValidateAppend(parent *Input) error {
	if in == nil || parent == nil {
		return errors.New("core: nil input")
	}
	if !parent.validated {
		return errors.New("core: append parent is not validated")
	}
	if in.Space == nil || in.Space.NumAttrs() != parent.Space.NumAttrs() {
		return errors.New("core: append changes the attribute space")
	}
	for a, c := range in.Space.Cards {
		if c != parent.Space.Cards[a] || in.Space.Names[a] != parent.Space.Names[a] {
			return fmt.Errorf("core: append changes attribute %d", a)
		}
	}
	n := len(parent.Rows)
	if len(in.Rows) < n {
		return fmt.Errorf("core: append shrinks the dataset (%d rows, parent has %d)", len(in.Rows), n)
	}
	for i := 0; i < n; i++ {
		if len(parent.Rows[i]) == 0 || len(in.Rows[i]) != len(parent.Rows[i]) || &in.Rows[i][0] != &parent.Rows[i][0] {
			return fmt.Errorf("core: append row %d does not alias the parent row", i)
		}
	}
	attrs := in.Space.NumAttrs()
	for i := n; i < len(in.Rows); i++ {
		if len(in.Rows[i]) != attrs {
			return fmt.Errorf("core: row %d has %d attributes, want %d", i, len(in.Rows[i]), attrs)
		}
		for j, v := range in.Rows[i] {
			if v < 0 || int(v) >= in.Space.Cards[j] {
				return fmt.Errorf("core: row %d attribute %d: value %d out of domain [0,%d)", i, j, v, in.Space.Cards[j])
			}
		}
	}
	if len(in.Ranking) != len(in.Rows) {
		return fmt.Errorf("core: ranking has %d entries for %d rows", len(in.Ranking), len(in.Rows))
	}
	seen := make([]bool, len(in.Rows))
	for _, ri := range in.Ranking {
		if ri < 0 || ri >= len(seen) || seen[ri] {
			return fmt.Errorf("core: ranking is not a permutation (index %d)", ri)
		}
		seen[ri] = true
	}
	if in.Index != nil && in.Index.NumRows() != len(in.Rows) {
		return fmt.Errorf("core: attached index covers %d rows, input has %d", in.Index.NumRows(), len(in.Rows))
	}
	in.validated = true
	return nil
}

// Stats records work accounting used by the experimental study (Section
// VI-B compares the number of patterns examined by the baseline and the
// optimized algorithms).
type Stats struct {
	// NodesExamined counts pattern nodes whose sizes were (re)examined.
	NodesExamined int64
	// FullSearches counts complete top-down searches performed.
	FullSearches int
}

func (s *Stats) add(o Stats) {
	s.NodesExamined += o.NodesExamined
	s.FullSearches += o.FullSearches
}

// Result holds, for each k in [KMin, KMax], the most general patterns with
// biased representation in the top-k (or, for the upper-bound variants, the
// most specific substantial patterns exceeding the bound).
type Result struct {
	KMin, KMax int
	// Groups[k-KMin] is the result set for k, sorted by (number of bound
	// attributes, key) for deterministic output.
	Groups [][]pattern.Pattern
	// Stats accumulates work accounting across the whole run.
	Stats Stats
	// Search carries the run's observability counters (expansion/pruning
	// breakdown, engine shortcuts, strategy, fan-out width). Nil when the
	// input sets DisableStats. Unlike Stats it is engine-dependent by
	// design and excluded from cross-engine equivalence comparisons.
	Search *SearchStats
}

// At returns the result set for a specific k. It returns nil when k is
// outside [KMin, KMax].
func (r *Result) At(k int) []pattern.Pattern {
	if k < r.KMin || k > r.KMax {
		return nil
	}
	return r.Groups[k-r.KMin]
}

// TotalGroups returns the summed sizes of all per-k result sets.
func (r *Result) TotalGroups() int {
	total := 0
	for _, g := range r.Groups {
		total += len(g)
	}
	return total
}

// GlobalParams parameterizes Problem 3.1 (global bounds representation
// bias) restricted to lower bounds, as in the body of the paper.
type GlobalParams struct {
	// MinSize is the size threshold τs on s_D(p).
	MinSize int
	// KMin, KMax delimit the inclusive range of k values.
	KMin, KMax int
	// Lower holds L_k for each k, indexed k-KMin (length KMax-KMin+1).
	// GLOBALBOUNDS requires a non-decreasing sequence (the paper's
	// assumption); ITERTD accepts any sequence.
	Lower []int
}

func (p *GlobalParams) validate() error {
	if p.KMin < 1 || p.KMax < p.KMin {
		return fmt.Errorf("core: invalid k range [%d,%d]", p.KMin, p.KMax)
	}
	if p.MinSize < 0 {
		return fmt.Errorf("core: negative size threshold %d", p.MinSize)
	}
	if len(p.Lower) != p.KMax-p.KMin+1 {
		return fmt.Errorf("core: %d lower bounds for k range [%d,%d]", len(p.Lower), p.KMin, p.KMax)
	}
	return nil
}

// lowerAt returns L_k.
func (p *GlobalParams) lowerAt(k int) int { return p.Lower[k-p.KMin] }

// PropParams parameterizes Problem 3.2 (proportional representation bias)
// restricted to the lower bound α, as in the body of the paper: a pattern
// is biased at k when s_{R_k(D)}(p) < α·s_D(p)·k/|D|.
type PropParams struct {
	// MinSize is the size threshold τs on s_D(p).
	MinSize int
	// KMin, KMax delimit the inclusive range of k values.
	KMin, KMax int
	// Alpha is the proportionality slack, typically in (0, 1].
	Alpha float64
}

func (p *PropParams) validate() error {
	if p.KMin < 1 || p.KMax < p.KMin {
		return fmt.Errorf("core: invalid k range [%d,%d]", p.KMin, p.KMax)
	}
	if p.MinSize < 0 {
		return fmt.Errorf("core: negative size threshold %d", p.MinSize)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("core: alpha must be positive, got %v", p.Alpha)
	}
	return nil
}

// StaircaseBounds builds the paper's default lower-bound sequence: starting
// at base, the bound increases by step every width values of k. With
// kMin=10, kMax=49, base=10, step=10, width=10 it yields L=10 for k in
// [10,20), 20 for [20,30), 30 for [30,40) and 40 for [40,50) (Section VI-A).
func StaircaseBounds(kMin, kMax, base, step, width int) []int {
	if kMax < kMin || width <= 0 {
		return nil
	}
	out := make([]int, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		out[k-kMin] = base + step*((k-kMin)/width)
	}
	return out
}

// ConstantBounds builds a constant lower-bound sequence L_k = l.
func ConstantBounds(kMin, kMax, l int) []int {
	if kMax < kMin {
		return nil
	}
	out := make([]int, kMax-kMin+1)
	for i := range out {
		out[i] = l
	}
	return out
}

// sortNodesInterned orders persistent search-tree nodes by (number of
// bound attributes, canonical key) — the generality order with
// deterministic ties every snapshot emits — interning each node's key on
// first use via the key accessor. A persistent node survives across the
// staircase's per-k snapshots, so its key is built exactly once per node
// lifetime instead of once per (node, snapshot); on the snapshot-dominated
// proportional sweep the key building was most of the sort. One generic
// implementation serves the three node types (gnode, pnode, enode).
func sortNodesInterned[N any](nodes []*N, pat func(*N) pattern.Pattern, key func(*N) *string) {
	if len(nodes) < 2 {
		return
	}
	type keyed struct {
		nd    *N
		attrs int
		key   string
	}
	items := make([]keyed, len(nodes))
	for i, nd := range nodes {
		kp := key(nd)
		if *kp == "" {
			*kp = pat(nd).Key()
		}
		items[i] = keyed{nd: nd, attrs: pat(nd).NumAttrs(), key: *kp}
	}
	slices.SortFunc(items, func(a, b keyed) int {
		if a.attrs != b.attrs {
			return a.attrs - b.attrs
		}
		return strings.Compare(a.key, b.key)
	})
	for i := range items {
		nodes[i] = items[i].nd
	}
}

// sortScratch holds the pooled buffers of sortPatterns: one shared byte
// arena for every key of a call plus the sort's item table, so a per-k
// baseline sorting its result set allocates nothing in steady state (the
// keys used to be one string allocation per pattern per call, the
// dominant allocator of the ITERTD staircases).
type sortScratch struct {
	buf   []byte
	offs  []int32
	items []sortItem
}

type sortItem struct {
	p     pattern.Pattern
	attrs int32
	key   []byte
}

var sortScratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

// sortPatterns orders a result set by (number of bound attributes, key) so
// outputs are deterministic across runs and algorithms. Keys are appended
// once per pattern into the pooled arena up front; byte comparison of the
// arena slices orders identically to string comparison of Pattern.Key.
func sortPatterns(ps []pattern.Pattern) {
	if len(ps) < 2 {
		return
	}
	sc := sortScratchPool.Get().(*sortScratch)
	buf, offs := sc.buf[:0], sc.offs[:0]
	offs = append(offs, 0)
	for _, p := range ps {
		buf = p.AppendKey(buf)
		offs = append(offs, int32(len(buf)))
	}
	items := sc.items
	if cap(items) < len(ps) {
		items = make([]sortItem, len(ps))
	} else {
		items = items[:len(ps)]
	}
	// Key slices are carved only after the arena stops growing, so they
	// cannot be invalidated by a reallocation.
	for i, p := range ps {
		items[i] = sortItem{p: p, attrs: int32(p.NumAttrs()), key: buf[offs[i]:offs[i+1]]}
	}
	slices.SortFunc(items, func(a, b sortItem) int {
		if a.attrs != b.attrs {
			return int(a.attrs - b.attrs)
		}
		return bytes.Compare(a.key, b.key)
	})
	for i := range items {
		ps[i] = items[i].p
		items[i] = sortItem{} // drop pattern references before pooling
	}
	sc.buf, sc.offs, sc.items = buf, offs, items[:0]
	sortScratchPool.Put(sc)
}
