package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"rankfair"
	"rankfair/internal/obs"
)

// JobStatus is the lifecycle state of an audit job.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// ErrQueueFull is returned by Submit when the job queue is at capacity;
// HTTP handlers map it to 503 so clients can back off.
var ErrQueueFull = errors.New("service: job queue full")

// JobFunc is one unit of audit work. It returns the serialized report and
// whether the result came from the cache (directly or by joining an
// in-flight duplicate) rather than a fresh computation.
type JobFunc func(ctx context.Context) (*rankfair.ReportJSON, bool, error)

// Job is the manager's record of one submitted audit.
type Job struct {
	ID      string
	Dataset string
	Params  rankfair.AuditParams

	status   JobStatus
	err      string
	errCode  string
	cacheHit bool
	report   *rankfair.ReportJSON

	// budget is the job's end-to-end time bound (queue wait + run);
	// zero means unbounded.
	budget time.Duration

	// meta carries the submitting request's correlation identity and the
	// dataset coordinates for the wide-event audit log and trace export.
	meta JobMeta

	created  time.Time
	started  time.Time
	finished time.Time

	run      JobFunc
	runCtx   context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	doneOnce sync.Once
}

// finish closes the job's completion channel exactly once.
func (j *Job) finish() { j.doneOnce.Do(func() { close(j.done) }) }

// JobView is the JSON-safe snapshot of a job served by the audit API.
type JobView struct {
	ID      string               `json:"id"`
	Dataset string               `json:"dataset"`
	Params  rankfair.AuditParams `json:"params"`
	Status  JobStatus            `json:"status"`
	Error   string               `json:"error,omitempty"`
	// ErrorCode classifies a failed job beyond the message: "shed" (the
	// queue wait consumed the budget before the job ran) or
	// "deadline_exceeded" (the budget expired mid-run). Empty otherwise.
	ErrorCode string    `json:"error_code,omitempty"`
	CacheHit  bool      `json:"cache_hit"`
	Created   time.Time `json:"created"`
	// BudgetMS echoes the job's end-to-end time budget when one was set.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// ElapsedMS is the run time: queued jobs report 0, running jobs the
	// time since start, finished jobs the total duration.
	ElapsedMS float64 `json:"elapsed_ms"`
	// NodesExamined, FullSearches and TotalGroups surface the detection
	// work statistics once the job is done.
	NodesExamined int64 `json:"nodes_examined,omitempty"`
	FullSearches  int   `json:"full_searches,omitempty"`
	TotalGroups   int   `json:"total_groups,omitempty"`
}

// JobObserver is the manager's hook into the observability layer: queue
// and run latency histograms, the finished-trace ring, and structured
// logging with a slow-audit threshold. A nil observer (or any nil field)
// disables that part of the instrumentation.
type JobObserver struct {
	// QueueWait observes created→started, Run observes started→finished,
	// both in seconds, with the job's trace ID as the bucket exemplar.
	QueueWait *obs.Histogram
	Run       *obs.Histogram
	// Traces receives each finished job's span tree, keyed by job ID.
	Traces *obs.TraceStore
	// Export receives each finished trace after it lands in Traces — the
	// OTLP enqueue hook. It must not block: the exporter's queue send is
	// non-blocking by contract.
	Export func(*obs.Trace)
	// AuditLog, when set, receives one wide-event record per terminal
	// audit: correlation IDs, dataset coordinates, phase durations,
	// search statistics and the outcome code in a single greppable line.
	AuditLog *slog.Logger
	// Logger logs job completion at debug level; jobs that ran longer than
	// SlowAudit (> 0) log at warn level with the full span tree attached.
	Logger    *slog.Logger
	SlowAudit time.Duration
}

// JobMeta is the correlation identity a submission carries into the job:
// the originating request ID, the W3C trace identity to adopt (so the
// audit's exported spans stitch under the caller's trace), and the
// audited dataset's content coordinates for the wide-event log.
type JobMeta struct {
	RequestID      string
	TraceID        string
	ParentSpan     string
	DatasetHash    string
	DatasetVersion int
}

// SetObserver installs the observer; call before the first Submit.
func (m *Manager) SetObserver(ob *JobObserver) {
	m.mu.Lock()
	m.observer = ob
	m.mu.Unlock()
}

// ManagerStats snapshots the job counters for /metrics.
type ManagerStats struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Shed and DeadlineExceeded break down Failed: jobs shed at dequeue
	// because their queue wait consumed the budget (or exceeded the
	// manager's CoDel-style bound), and jobs whose budget expired mid-run.
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Queued           int   `json:"queued"`
	Running          int   `json:"running"`
}

// Manager runs audit jobs on a fixed pool of workers over a bounded
// queue. Submission is non-blocking: a full queue rejects immediately
// rather than stalling the HTTP handler.
type Manager struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	seq     int64
	queue   chan *Job
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	submitted, completed, failed, canceled int64
	shed, deadlineExceeded                 int64
	running                                int
	retain                                 int
	clock                                  func() time.Time
	observer                               *JobObserver

	// queueBudget is the CoDel-style queue-wait bound for jobs without
	// their own budget: a job that waited longer than this is shed at
	// dequeue instead of run (running it would only add late work to an
	// already-behind queue). Zero disables the bound.
	queueBudget time.Duration

	// beforeRun, when set, runs on the worker goroutine after dequeue and
	// before the shed/deadline checks — a fault-injection seam chaos tests
	// use to add deterministic queue latency.
	beforeRun func()
}

// defaultJobRetention bounds how many job records the manager keeps; the
// oldest *finished* jobs are pruned beyond it so the daemon's memory does
// not grow with its lifetime.
const defaultJobRetention = 1024

// NewManager starts workers goroutines consuming a queue of queueDepth
// pending jobs (<= 0: 4 workers, depth 64).
func NewManager(workers, queueDepth int) *Manager {
	if workers <= 0 {
		workers = 4
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, queueDepth),
		baseCtx: ctx,
		stop:    cancel,
		retain:  defaultJobRetention,
		clock:   time.Now,
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// SetQueueWaitBudget installs the CoDel-style queue-wait bound for
// budget-less jobs; call before serving traffic.
func (m *Manager) SetQueueWaitBudget(d time.Duration) {
	m.mu.Lock()
	m.queueBudget = d
	m.mu.Unlock()
}

// SubmitOption tunes one submission.
type SubmitOption func(*submitSpec)

type submitSpec struct {
	budget time.Duration
	meta   JobMeta
}

// WithBudget bounds the job end to end: the deadline covers queue wait
// plus run, flows into the job context (and from there into the
// cancellable lattice search), and a job still queued when it expires is
// shed without running. Non-positive budgets are ignored.
func WithBudget(d time.Duration) SubmitOption {
	return func(s *submitSpec) { s.budget = d }
}

// WithMeta attaches the submitting request's correlation identity and
// dataset coordinates to the job.
func WithMeta(meta JobMeta) SubmitOption {
	return func(s *submitSpec) { s.meta = meta }
}

// Submit queues one job. It returns the job snapshot immediately; the
// work runs asynchronously on the pool.
func (m *Manager) Submit(dataset string, params rankfair.AuditParams, run JobFunc, opts ...SubmitOption) (JobView, error) {
	var spec submitSpec
	for _, o := range opts {
		o(&spec)
	}
	m.mu.Lock()
	created := m.clock()
	ctx, cancel := context.WithCancel(m.baseCtx)
	if spec.budget > 0 {
		dctx, dcancel := context.WithDeadline(ctx, created.Add(spec.budget))
		base := cancel
		ctx, cancel = dctx, func() { dcancel(); base() }
	}
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", m.seq),
		Dataset: dataset,
		Params:  params,
		status:  JobQueued,
		created: created,
		budget:  max(spec.budget, 0),
		meta:    spec.meta,
		run:     run,
		runCtx:  ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.submitted++
	view := m.viewLocked(j)
	m.mu.Unlock()

	select {
	case m.queue <- j:
		return view, nil
	default:
		m.mu.Lock()
		j.status = JobFailed
		j.err = ErrQueueFull.Error()
		m.submitted-- // never entered the queue
		delete(m.jobs, j.ID)
		m.mu.Unlock()
		cancel()
		return JobView{}, ErrQueueFull
	}
}

// worker drains the queue until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j := <-m.queue:
			m.execute(j)
		}
	}
}

// outcomeFor maps a terminal job state onto the stable outcome code the
// root span, the wide-event log and the OTLP status all carry: "ok",
// "error", "canceled", "shed" or "deadline_exceeded".
func outcomeFor(status JobStatus, errCode string) string {
	switch {
	case status == JobDone:
		return "ok"
	case status == JobCanceled:
		return "canceled"
	case errCode != "":
		return errCode
	default:
		return "error"
	}
}

// finishTraceLocked builds the span-tree record for a job that reached a
// terminal state before running (shed at dequeue, canceled while
// queued): a root span covering submission→finish with the queue child
// spanning the whole wait and the outcome attribute set. Callers hold
// m.mu — the ring insert lands before the terminal status becomes
// visible to Get/List, preserving the no-404-after-terminal invariant
// the run path has always kept.
func finishTraceLocked(ob *JobObserver, j *Job, outcome string) *obs.Trace {
	if ob == nil {
		return nil
	}
	tr := obs.NewTrace(j.ID, "audit", j.created)
	tr.AdoptIdentity(j.meta.TraceID, j.meta.ParentSpan)
	tr.Root().ChildAt("queue", j.created, j.finished)
	tr.Root().SetAttr("outcome", outcome)
	tr.Root().FinishAt(j.finished)
	if ob.Traces != nil {
		ob.Traces.Put(tr)
	}
	return tr
}

// execute runs one job to completion.
func (m *Manager) execute(j *Job) {
	defer j.finish()
	ctx := j.runCtx
	m.mu.Lock()
	hook := m.beforeRun
	m.mu.Unlock()
	if hook != nil {
		hook()
	}
	m.mu.Lock()
	if j.status == JobCanceled || ctx.Err() != nil {
		switch {
		case j.status == JobCanceled:
			// Counted by Cancel already.
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			// The queue wait consumed the whole budget: shed without
			// running — late work would only push the queue further behind.
			j.status = JobFailed
			j.errCode = CodeShed
			j.err = fmt.Sprintf("shed before running: queue wait exceeded the %v budget", j.budget)
			m.shed++
			m.failed++
		default:
			j.status = JobCanceled
			m.canceled++
		}
		j.finished = m.clock()
		j.run = nil
		ob := m.observer
		outcome := outcomeFor(j.status, j.errCode)
		tr := finishTraceLocked(ob, j, outcome)
		m.mu.Unlock()
		j.cancel()
		m.afterTerminal(ob, j, tr, outcome, false, nil)
		return
	}
	if wait := m.clock().Sub(j.created); m.queueBudget > 0 && j.budget == 0 && wait > m.queueBudget {
		// CoDel-style bound for budget-less jobs: a wait this long means
		// the queue is persistently behind, so shed rather than serve stale.
		j.status = JobFailed
		j.errCode = CodeShed
		j.err = fmt.Sprintf("shed before running: queue wait %v exceeded the %v bound", wait.Round(time.Millisecond), m.queueBudget)
		m.shed++
		m.failed++
		j.finished = m.clock()
		j.run = nil
		ob := m.observer
		tr := finishTraceLocked(ob, j, "shed")
		m.mu.Unlock()
		j.cancel()
		m.afterTerminal(ob, j, tr, "shed", false, nil)
		return
	}
	j.status = JobRunning
	j.started = m.clock()
	m.running++
	ob := m.observer
	m.mu.Unlock()

	// The trace roots at submission so the queue wait is visible in the
	// span tree; the run span rides into the job context, and the phases
	// the service opens below it (analyst → search → serialize) nest there.
	var tr *obs.Trace
	var runSpan *obs.Span
	if ob != nil {
		tr = obs.NewTrace(j.ID, "audit", j.created)
		tr.AdoptIdentity(j.meta.TraceID, j.meta.ParentSpan)
		tr.Root().ChildAt("queue", j.created, j.started)
		runSpan = tr.Root().StartChild("run")
		ctx = obs.ContextWithSpan(ctx, runSpan)
		if ob.QueueWait != nil {
			ob.QueueWait.ObserveExemplar(j.started.Sub(j.created).Seconds(), tr.TraceID())
		}
	}

	report, hit, err := j.run(ctx)

	// Classify the terminal state once, before the trace closes and before
	// the status is published, so the outcome attribute on the exported
	// root span and the job's visible status can never disagree.
	finished := m.clock()
	deadlined := errors.Is(ctx.Err(), context.DeadlineExceeded)
	var status JobStatus
	var errCode, errMsg string
	switch {
	case ctx.Err() != nil && !(deadlined && err == nil && report != nil):
		// Canceled mid-run: the job context flows into the lattice search
		// (Analyst.DetectCtx), which aborts within a bounded number of
		// node expansions and returns a partial-work error; whatever the
		// run produced is discarded. A budget expiring is surfaced as a
		// typed deadline_exceeded failure carrying the partial-work error
		// (how many nodes the search examined before stopping); an
		// explicit cancel stays a canceled job. The one exception: a run
		// that *completed* just as its deadline fired still serves its
		// report — the result beat the check.
		if deadlined {
			status, errCode = JobFailed, CodeDeadlineExceeded
			if err != nil {
				errMsg = err.Error()
			} else {
				errMsg = context.DeadlineExceeded.Error()
			}
		} else {
			status = JobCanceled
		}
	case err != nil:
		status, errMsg = JobFailed, err.Error()
	default:
		status = JobDone
	}
	outcome := outcomeFor(status, errCode)

	if ob != nil {
		// Close out the trace before the job's terminal status becomes
		// visible, so a client that polls to completion and immediately
		// fetches /v1/audits/{id}/trace never races the ring insert.
		runSpan.FinishAt(finished)
		tr.Root().SetAttr("outcome", outcome)
		if status == JobDone {
			tr.Root().SetAttr("cache", cacheDisposition(hit))
		}
		tr.Root().FinishAt(finished)
		if ob.Run != nil {
			ob.Run.ObserveExemplar(finished.Sub(j.started).Seconds(), tr.TraceID())
		}
		if ob.Traces != nil {
			ob.Traces.Put(tr)
		}
	}

	m.mu.Lock()
	m.running--
	j.finished = finished
	j.status = status
	j.err = errMsg
	j.errCode = errCode
	switch status {
	case JobDone:
		j.report = report
		j.cacheHit = hit
		m.completed++
	case JobCanceled:
		m.canceled++
	default:
		m.failed++
		if errCode == CodeDeadlineExceeded {
			m.deadlineExceeded++
		} else if errCode == CodeShed {
			m.shed++
		}
	}
	// Release what the job no longer needs: the run closure pins the
	// decoded table, and the uncalled cancel pins a child of baseCtx.
	// (Called after the ctx.Err() check above, which it would taint.)
	j.run = nil
	j.cancel()
	m.pruneLocked()
	m.mu.Unlock()

	m.afterTerminal(ob, j, tr, outcome, hit, report)

	if ob == nil || ob.Logger == nil {
		return
	}
	elapsed := finished.Sub(j.started)
	elapsedMS := float64(elapsed) / float64(time.Millisecond)
	if ob.SlowAudit > 0 && elapsed >= ob.SlowAudit {
		// The span tree is marshaled into one attribute so a slow audit's
		// phase breakdown lands in the log stream even after the trace
		// ring evicts it.
		spans, _ := json.Marshal(tr.Tree())
		ob.Logger.Warn("slow audit",
			"job", j.ID, "dataset", j.Dataset, "status", string(status),
			"cache_hit", hit, "elapsed_ms", elapsedMS, "trace", string(spans))
		return
	}
	ob.Logger.Debug("audit finished",
		"job", j.ID, "dataset", j.Dataset, "status", string(status),
		"cache_hit", hit, "elapsed_ms", elapsedMS)
}

// cacheDisposition renders the cache outcome for span attributes and the
// wide-event log.
func cacheDisposition(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// afterTerminal runs the observer hooks that follow a job's terminal
// transition: the OTLP export enqueue and the wide-event audit record.
// Called outside m.mu — both hooks are non-blocking by contract, but
// neither needs the lock and the log write does I/O.
func (m *Manager) afterTerminal(ob *JobObserver, j *Job, tr *obs.Trace, outcome string, hit bool, report *rankfair.ReportJSON) {
	if ob == nil || tr == nil {
		return
	}
	if ob.Export != nil {
		ob.Export(tr)
	}
	if ob.AuditLog == nil {
		return
	}
	// One wide event per terminal audit: everything needed to reconstruct
	// the request in a single greppable record. Phase durations come from
	// the span tree so the log and the exported trace always agree.
	var queueMS, runMS, serializeMS float64
	_, recs := tr.Records()
	for _, rec := range recs {
		if rec.End.IsZero() {
			continue
		}
		d := float64(rec.End.Sub(rec.Start)) / float64(time.Millisecond)
		switch rec.Name {
		case "queue":
			queueMS = d
		case "run":
			runMS = d
		case "serialize":
			serializeMS = d
		}
	}
	attrs := []any{
		"job", j.ID,
		"request_id", j.meta.RequestID,
		"trace_id", tr.TraceID(),
		"dataset", j.Dataset,
		"dataset_hash", j.meta.DatasetHash,
		"dataset_version", j.meta.DatasetVersion,
		"measure", j.Params.Measure,
		"workers", j.Params.Workers,
		"outcome", outcome,
		"cache", cacheDisposition(hit),
		"queue_ms", queueMS,
		"run_ms", runMS,
		"serialize_ms", serializeMS,
	}
	if report != nil && report.Stats != nil {
		st := report.Stats
		attrs = append(attrs,
			"strategy", st.Strategy,
			"nodes_expanded", st.NodesExpanded,
			"pruned", st.PrunedSize+st.PrunedBound+st.PrunedDominated,
			"posting_intersections", st.PostingIntersections,
		)
	}
	ob.AuditLog.Info("audit", attrs...)
}

// pruneLocked drops the oldest finished jobs beyond the retention cap.
// Job IDs are zero-padded sequence numbers, so lexicographic order is
// submission order.
func (m *Manager) pruneLocked() {
	if len(m.jobs) <= m.retain {
		return
	}
	finished := make([]string, 0, len(m.jobs))
	for id, j := range m.jobs {
		switch j.status {
		case JobDone, JobFailed, JobCanceled:
			finished = append(finished, id)
		}
	}
	sort.Strings(finished)
	for _, id := range finished {
		if len(m.jobs) <= m.retain {
			break
		}
		delete(m.jobs, id)
	}
}

// Cancel cancels a queued or running job; it reports whether the job
// exists. A queued job never starts; a running job's context is canceled,
// which stops the in-core lattice search mid-traversal (within a bounded
// number of node expansions) and discards the partial result.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	canceledQueued := false
	if ok && j.status == JobQueued {
		j.status = JobCanceled
		j.finished = m.clock()
		m.canceled++
		canceledQueued = true
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel()
	if canceledQueued {
		j.finish()
	}
	return true
}

// Wait blocks until the job finishes (done, failed or canceled) or ctx
// expires, then returns the final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("service: no audit %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	view, _ := m.Get(id)
	return view, nil
}

// Get returns the snapshot of one job.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return m.viewLocked(j), true
}

// Report returns the finished report of a done job.
func (m *Manager) Report(id string) (*rankfair.ReportJSON, JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, JobView{}, false
	}
	return j.report, m.viewLocked(j), true
}

// List returns snapshots of every job, newest first.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.viewLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Stats snapshots the counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	queued := 0
	for _, j := range m.jobs {
		if j.status == JobQueued {
			queued++
		}
	}
	return ManagerStats{
		Submitted:        m.submitted,
		Completed:        m.completed,
		Failed:           m.failed,
		Canceled:         m.canceled,
		Shed:             m.shed,
		DeadlineExceeded: m.deadlineExceeded,
		Queued:           queued,
		Running:          m.running,
	}
}

// Shutdown cancels every outstanding job and waits for the workers to
// drain, or for ctx to expire. Jobs still waiting in the queue are
// marked canceled so concurrent Wait calls unblock.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.stop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		// Workers are gone; whatever is left in the queue will never
		// run. Cancel it so waiters see a terminal state.
		for {
			select {
			case j := <-m.queue:
				m.mu.Lock()
				if j.status == JobQueued {
					j.status = JobCanceled
					j.finished = m.clock()
					m.canceled++
				}
				m.mu.Unlock()
				j.finish()
			default:
				close(done)
				return
			}
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// viewLocked snapshots a job; callers hold m.mu.
func (m *Manager) viewLocked(j *Job) JobView {
	v := JobView{
		ID:        j.ID,
		Dataset:   j.Dataset,
		Params:    j.Params,
		Status:    j.status,
		Error:     j.err,
		ErrorCode: j.errCode,
		CacheHit:  j.cacheHit,
		Created:   j.created,
		BudgetMS:  j.budget.Milliseconds(),
	}
	switch j.status {
	case JobRunning:
		v.ElapsedMS = float64(m.clock().Sub(j.started)) / float64(time.Millisecond)
	case JobDone, JobFailed, JobCanceled:
		if !j.started.IsZero() {
			v.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if j.report != nil {
		v.NodesExamined = j.report.NodesExamined
		v.FullSearches = j.report.FullSearches
		for _, kg := range j.report.Results {
			v.TotalGroups += len(kg.Groups)
		}
	}
	return v
}
