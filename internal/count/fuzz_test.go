package count

import (
	"sort"
	"testing"

	"rankfair/internal/pattern"
)

// FuzzIndexedCounts decodes an arbitrary byte string into a small space,
// row matrix, ranking and pattern, and asserts the indexed counts equal the
// naive scans — the coverage-guided twin of TestIndexMatchesNaive.
func FuzzIndexedCounts(f *testing.F) {
	f.Add([]byte{3, 2, 3, 4, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{1, 1, 0, 0, 0})
	f.Add([]byte{2, 4, 4, 7, 3, 1, 0, 2, 6, 5, 4, 3, 2, 1, 9, 8, 7, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		nAttrs := 1 + int(data[0]%4)
		if len(data) < 1+nAttrs {
			t.Skip()
		}
		space := &pattern.Space{
			Names: make([]string, nAttrs),
			Cards: make([]int, nAttrs),
		}
		for a := 0; a < nAttrs; a++ {
			space.Names[a] = string(rune('A' + a))
			space.Cards[a] = 1 + int(data[1+a]%5)
		}
		body := data[1+nAttrs:]
		nRows := len(body) / (nAttrs + 1)
		if nRows == 0 {
			t.Skip()
		}
		if nRows > 64 {
			nRows = 64
		}
		rows := make([][]int32, nRows)
		for i := range rows {
			rows[i] = make([]int32, nAttrs)
			for a := 0; a < nAttrs; a++ {
				rows[i][a] = int32(int(body[i*(nAttrs+1)+a]) % space.Cards[a])
			}
		}
		// Derive a permutation from the leftover byte per row: a stable
		// sort key ensures a valid ranking regardless of input bytes.
		ranking := make([]int, nRows)
		for i := range ranking {
			ranking[i] = i
		}
		for i := range ranking {
			j := int(body[i*(nAttrs+1)+nAttrs]) % nRows
			ranking[i], ranking[j] = ranking[j], ranking[i]
		}
		ix := Build(rows, space, ranking)

		// Derive patterns of every arity from the data tail and compare.
		// checkIndex also drives the bitmap counting chain directly — the
		// Count/CountTopK cost model only routes through bitmaps for lists
		// past bitmapProbeMin, far larger than any fuzz dataset, so the
		// bitmap arm is asserted at the andCardinalityAll level instead.
		checkIndex := func(ix *Index, rows [][]int32, ranking []int) {
			nRows := len(rows)
			for arity := 0; arity <= nAttrs; arity++ {
				p := pattern.Empty(nAttrs)
				for a := 0; a < arity; a++ {
					p[a] = int32(int(data[(a+arity)%len(data)]) % space.Cards[a])
				}
				if got, want := ix.Count(p), p.Count(rows); got != want {
					t.Fatalf("Count(%v) = %d, naive %d", p, got, want)
				}
				for _, k := range []int{1, nRows / 2, nRows} {
					if k < 1 {
						continue
					}
					if got, want := ix.CountTopK(p, k), p.CountTopK(rows, ranking, k); got != want {
						t.Fatalf("CountTopK(%v, %d) = %d, naive %d", p, k, got, want)
					}
				}
				if bms, ok := ix.patternBitmaps(p); ok && len(bms) >= 2 {
					if got, want := andCardinalityAll(bms, -1), p.Count(rows); got != want {
						t.Fatalf("andCardinalityAll(%v, -1) = %d, naive %d", p, got, want)
					}
					for _, k := range []int{1, nRows / 2, nRows} {
						if k < 1 {
							continue
						}
						bms, _ := ix.patternBitmaps(p)
						if got, want := andCardinalityAll(bms, k), p.CountTopK(rows, ranking, k); got != want {
							t.Fatalf("andCardinalityAll(%v, %d) = %d, naive %d", p, k, got, want)
						}
					}
				}
			}
		}
		checkIndex(ix, rows, ranking)

		// Append-then-count: extend the index with a derived batch (the
		// streaming path, which aliases untouched bitmaps and rebuilds
		// perturbed ones) and re-assert every count on the grown dataset.
		nExtra := 1 + int(data[len(data)-1]%4)
		rows2 := append(make([][]int32, 0, nRows+nExtra), rows...)
		for e := 0; e < nExtra; e++ {
			r := make([]int32, nAttrs)
			for a := 0; a < nAttrs; a++ {
				r[a] = int32(int(data[(e*3+a)%len(data)]) % space.Cards[a])
			}
			rows2 = append(rows2, r)
		}
		// Insert each appended row id into the ranking at a byte-derived
		// position; old rows keep their relative order, as Extend requires.
		ranking2 := append(make([]int, 0, nRows+nExtra), ranking...)
		for e := 0; e < nExtra; e++ {
			pos := int(data[(e*5+1)%len(data)]) % (len(ranking2) + 1)
			ranking2 = append(ranking2, 0)
			copy(ranking2[pos+1:], ranking2[pos:])
			ranking2[pos] = nRows + e
		}
		checkIndex(ix.Extend(rows2, space, ranking2), rows2, ranking2)
	})
}

// fuzzRankList decodes bytes into an ascending, duplicate-free rank list.
// The mode byte picks the shape: dense emits consecutive runs (up to 64 per
// byte, so a couple hundred high bytes push one container past arrayMaxCard
// into the word form), sparse strides far enough per byte to cross 1<<16
// container boundaries, and mixed stays within the array form.
func fuzzRankList(bs []byte, mode byte) []int32 {
	out := make([]int32, 0, len(bs))
	cur := int32(mode % 7)
	for _, b := range bs {
		switch mode % 3 {
		case 0: // dense runs
			run := 1 + int32(b&63)
			for r := int32(0); r < run; r++ {
				out = append(out, cur)
				cur++
			}
			cur += 1 + int32(b>>6)
		case 1: // sparse, container-crossing
			cur += 1 + int32(b)*521
			out = append(out, cur)
		default: // mixed small gaps
			cur += 1 + int32(b&15)
			out = append(out, cur)
		}
	}
	return out
}

// FuzzBitmapIntersect is the bitmap-vs-slice differential: it decodes two
// rank lists spanning all three container shapes (sorted array, word bitmap,
// multi-container), builds Bitmaps, and asserts every bitmap operation —
// round trip, CountBelow, AndCardinality(Below), materialized And — against
// the posting-list oracles, including the append-then-count arm that mirrors
// Extend's merged-list bitmap rebuild.
func FuzzBitmapIntersect(f *testing.F) {
	f.Add([]byte{0, 1, 9, 1, 2, 3, 4, 200, 100, 50, 25, 12, 6, 3})
	f.Add([]byte{1, 0, 4, 255, 255, 0, 0, 128, 7, 7, 7})
	f.Add(append([]byte{0, 0, 120}, make([]byte, 90)...))
	// 89 dense bytes for list a: ~5.7k consecutive-run ranks land in one
	// container, past arrayMaxCard, so the seed corpus already covers the
	// word-container form.
	dense := []byte{0, 2, 89}
	for i := 0; i < 90; i++ {
		dense = append(dense, 0xff)
	}
	f.Add(dense)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		modeA, modeB := data[0], data[1]
		split := 3 + int(data[2])%(len(data)-3)
		a := fuzzRankList(data[3:split], modeA)
		b := fuzzRankList(data[split:], modeB)
		bmA, bmB := BitmapFromRanks(a), BitmapFromRanks(b)

		equal := func(got, want []int32) bool {
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		// Round trip and cardinality.
		if got := bmA.AppendRanks(nil); !equal(got, a) {
			t.Fatalf("AppendRanks round trip = %v, want %v", got, a)
		}
		if bmA.Cardinality() != len(a) {
			t.Fatalf("Cardinality = %d, want %d", bmA.Cardinality(), len(a))
		}
		// AppendRanks must extend dst in place, leaving the prefix intact.
		pre := []int32{-3, -2, -1}
		ext := bmA.AppendRanks(pre)
		if !equal(ext[:3], pre[:3]) || !equal(ext[3:], a) {
			t.Fatalf("AppendRanks(dst) = %v, want prefix %v then %v", ext, pre[:3], a)
		}

		// Cut points: edges, a mid element, container boundaries.
		cuts := []int{0, 1, containerSpan, containerSpan + 1}
		if len(a) > 0 {
			cuts = append(cuts, int(a[len(a)/2]), int(a[len(a)-1]), int(a[len(a)-1])+1)
		}
		countBelow := func(xs []int32, k int) int {
			n := 0
			for _, x := range xs {
				if int(x) < k {
					n++
				}
			}
			return n
		}
		for _, k := range cuts {
			if got, want := bmA.CountBelow(k), countBelow(a, k); got != want {
				t.Fatalf("CountBelow(%d) = %d, want %d", k, got, want)
			}
		}

		// Intersection: the slice engine is the oracle.
		want := IntersectInto(nil, a, b)
		if got := bmA.AndCardinality(bmB); got != len(want) {
			t.Fatalf("AndCardinality = %d, want %d", got, len(want))
		}
		if got := bmA.And(bmB).AppendRanks(nil); !equal(got, want) {
			t.Fatalf("And().AppendRanks = %v, want %v", got, want)
		}
		for _, k := range cuts {
			if got, wantK := bmA.AndCardinalityBelow(bmB, k), countBelow(want, k); got != wantK {
				t.Fatalf("AndCardinalityBelow(%d) = %d, want %d", k, got, wantK)
			}
		}

		// Append-then-count: merge b's ranks shifted past a's maximum (the
		// shape Extend produces when a batch lands mid-ranking rebuilds the
		// list, when it lands at the bottom it appends) and require the
		// rebuilt bitmap to agree with slice counts on the merged list.
		shift := int32(1)
		if len(a) > 0 {
			shift = a[len(a)-1] + 1 + int32(modeB%5)
		}
		merged := append(make([]int32, 0, len(a)+len(b)), a...)
		for _, x := range b {
			merged = append(merged, x+shift)
		}
		bmM := BitmapFromRanks(merged)
		if bmM.Cardinality() != len(merged) {
			t.Fatalf("merged Cardinality = %d, want %d", bmM.Cardinality(), len(merged))
		}
		for _, k := range cuts {
			if got, wantK := bmM.CountBelow(k), countBelow(merged, k); got != wantK {
				t.Fatalf("merged CountBelow(%d) = %d, want %d", k, got, wantK)
			}
		}
		// a is a prefix subset of merged, so the intersection is a itself.
		if got := bmM.And(bmA).AppendRanks(nil); !equal(got, a) {
			t.Fatalf("merged And(a) = %v, want %v", got, a)
		}
	})
}

// FuzzIntersect decodes an arbitrary byte string into two ascending rank
// lists plus a small indexed dataset, and asserts the posting-list
// intersection primitives match naive list filtering: IntersectInto against
// a mark-and-sweep set intersection, and IntersectPostings against a row
// scan through pattern.Matches. It is the coverage-guided twin of
// TestIntersectMatchesNaive for the rank-space search engine.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 9, 8, 7, 6, 5, 0, 1, 2})
	f.Add([]byte{1, 0})
	f.Add([]byte{16, 255, 0, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9, 9, 9, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		// Lists: split the tail in two, dedup+sort each into rank lists.
		// A skewed split exercises the galloping path.
		split := 1 + int(data[0])%(len(data)-1)
		toList := func(bs []byte) []int32 {
			seen := make(map[int32]bool, len(bs))
			for i, b := range bs {
				// Spread values so runs of equal bytes still produce
				// diverse gaps between entries.
				seen[int32(b)+int32(i%3)*256] = true
			}
			out := make([]int32, 0, len(seen))
			for v := range seen {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := toList(data[1:split]), toList(data[split:])
		got := IntersectInto(nil, a, b)
		inB := make(map[int32]bool, len(b))
		for _, x := range b {
			inB[x] = true
		}
		var want []int32
		for _, x := range a {
			if inB[x] {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("IntersectInto(%v, %v) = %v, want %v", a, b, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("IntersectInto(%v, %v) = %v, want %v", a, b, got, want)
			}
		}

		// Index-level: a tiny two-attribute dataset from the same bytes;
		// IntersectPostings must match the naive filter over every
		// two-attribute pattern.
		nRows := len(data)
		if nRows > 48 {
			nRows = 48
		}
		const cardA, cardB = 3, 4
		space := &pattern.Space{Names: []string{"A", "B"}, Cards: []int{cardA, cardB}}
		rows := make([][]int32, nRows)
		ranking := make([]int, nRows)
		for i := 0; i < nRows; i++ {
			rows[i] = []int32{int32(data[i]) % cardA, int32(data[i]>>3) % cardB}
			ranking[i] = i
		}
		for i := range ranking { // derive a permutation from the bytes
			j := int(data[(i*7)%len(data)]) % nRows
			ranking[i], ranking[j] = ranking[j], ranking[i]
		}
		ix := Build(rows, space, ranking)
		for va := int32(0); va < cardA; va++ {
			for vb := int32(0); vb < cardB; vb++ {
				p := pattern.Pattern{va, vb}
				ranks := ix.IntersectPostings(p)
				var naive []int32
				for r := 0; r < nRows; r++ {
					if p.Matches(rows[ranking[r]]) {
						naive = append(naive, int32(r))
					}
				}
				if len(ranks) != len(naive) {
					t.Fatalf("IntersectPostings(%v) = %v, naive filter %v", p, ranks, naive)
				}
				for i := range ranks {
					if ranks[i] != naive[i] {
						t.Fatalf("IntersectPostings(%v) = %v, naive filter %v", p, ranks, naive)
					}
				}
			}
		}
	})
}
