// Benchmarks regenerating the workload of every figure in the paper's
// evaluation (Section VI). Dataset sizes are scaled down so `go test
// -bench=.` completes quickly; `cmd/benchfig` runs the full-size sweeps and
// prints the paper's series. Each figure has one benchmark with
// per-dataset/per-algorithm sub-benchmarks, so relative timings (baseline
// vs optimized — the paper's headline comparison) come straight out of the
// bench output.
package rankfair_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rankfair"
	"rankfair/internal/core"
	"rankfair/internal/count"
	"rankfair/internal/divergence"
	"rankfair/internal/exp"
	"rankfair/internal/explain"
	"rankfair/internal/rank"
	"rankfair/internal/service"
	"rankfair/internal/synth"
)

// benchScale keeps bench iterations fast while preserving the search-space
// shape (same schemas, reduced rows).
var benchBundles = sync.OnceValue(func() map[string]*synth.Bundle {
	return map[string]*synth.Bundle{
		"compas":  synth.COMPAS(1500, 1),
		"student": synth.Students(395, 2),
		"german":  synth.GermanCredit(1000, 3),
	}
})

var benchDatasets = []string{"compas", "student", "german"}

// benchAttrs bounds the attribute count per dataset for the bench workloads.
const benchAttrs = 8

func benchInput(b *testing.B, name string, attrs int) *core.Input {
	b.Helper()
	bundle := benchBundles()[name]
	if attrs > bundle.NumCatAttrs() {
		attrs = bundle.NumCatAttrs()
	}
	in, err := bundle.InputAttrs(attrs)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// benchGlobalPair benchmarks ITERTD vs GLOBALBOUNDS on one workload.
func benchGlobalPair(b *testing.B, name string, attrs, tau, kMin, kMax int) {
	in := benchInput(b, name, attrs)
	params := core.GlobalParams{MinSize: tau, KMin: kMin, KMax: kMax, Lower: core.StaircaseBounds(kMin, kMax, 10, 10, 10)}
	b.Run("IterTD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.IterTDGlobal(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GlobalBounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GlobalBounds(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchPropPair benchmarks ITERTD vs PROPBOUNDS on one workload.
func benchPropPair(b *testing.B, name string, attrs, tau, kMin, kMax int) {
	in := benchInput(b, name, attrs)
	params := core.PropParams{MinSize: tau, KMin: kMin, KMax: kMax, Alpha: 0.8}
	b.Run("IterTD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.IterTDProp(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PropBounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PropBounds(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4AttrsGlobal: runtime vs number of attributes, global bounds
// (Figure 4a-4c).
func BenchmarkFig4AttrsGlobal(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) { benchGlobalPair(b, name, benchAttrs, 50, 10, 49) })
	}
}

// BenchmarkFig5AttrsProp: runtime vs number of attributes, proportional
// representation (Figure 5a-5c).
func BenchmarkFig5AttrsProp(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) { benchPropPair(b, name, benchAttrs, 50, 10, 49) })
	}
}

// BenchmarkFig6ThresholdGlobal: runtime at the low end of the τs sweep,
// global bounds (Figure 6a-6c; τs=10 is the hardest point of the sweep).
func BenchmarkFig6ThresholdGlobal(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) { benchGlobalPair(b, name, benchAttrs, 10, 10, 49) })
	}
}

// BenchmarkFig7ThresholdProp: the proportional τs sweep (Figure 7a-7c).
func BenchmarkFig7ThresholdProp(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) { benchPropPair(b, name, benchAttrs, 10, 10, 49) })
	}
}

// BenchmarkFig8KRangeGlobal: runtime with a wide k range, global bounds
// (Figure 8a-8c; the widest range dominates the sweep).
func BenchmarkFig8KRangeGlobal(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			n := benchBundles()[name].Table.NumRows()
			kMax := 300
			if kMax > n {
				kMax = n
			}
			benchGlobalPair(b, name, benchAttrs, 50, 10, kMax)
		})
	}
}

// BenchmarkFig9KRangeProp: runtime with a wide k range, proportional
// (Figure 9a-9c).
func BenchmarkFig9KRangeProp(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			n := benchBundles()[name].Table.NumRows()
			kMax := 300
			if kMax > n {
				kMax = n
			}
			benchPropPair(b, name, benchAttrs, 50, 10, kMax)
		})
	}
}

// BenchmarkFig10Shapley: the Section V explanation pipeline per dataset
// (Figures 10a-10f): surrogate training + aggregated Shapley values +
// distribution comparison.
func BenchmarkFig10Shapley(b *testing.B) {
	targets := map[string][2]string{
		"student": {"Medu", "primary"},
		"compas":  {"age", "<35"},
		"german":  {"status_checking", "[0,200)DM"},
	}
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			bundle := benchBundles()[name]
			in, err := bundle.Input()
			if err != nil {
				b.Fatal(err)
			}
			target := targets[name]
			a, err := rankfairBind(bundle, target[0], target[1])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := explain.Explain(in, bundle.Table.CatDicts(), a, 49, explain.Options{
					Seed: 1, Permutations: 8, BackgroundSize: 16,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// rankfairBind resolves a {attr=label} pattern against a bundle.
func rankfairBind(bundle *synth.Bundle, attr, label string) (core.Pattern, error) {
	_, names, _ := bundle.Table.CatMatrix()
	dicts := bundle.Table.CatDicts()
	p := make(core.Pattern, len(names))
	for i := range p {
		p[i] = -1
	}
	for i, n := range names {
		if n == attr {
			for c, l := range dicts[i] {
				if l == label {
					p[i] = int32(c)
					return p, nil
				}
			}
		}
	}
	return nil, errNotFound(attr + "=" + label)
}

type errNotFound string

func (e errNotFound) Error() string { return "not found: " + string(e) }

// BenchmarkCaseStudyDivergence: the Section VI-D comparator (frequent
// subgroup mining + divergence ranking) on the Student dataset.
func BenchmarkCaseStudyDivergence(b *testing.B) {
	bundle := benchBundles()["student"]
	in, err := bundle.InputAttrs(4)
	if err != nil {
		b.Fatal(err)
	}
	params := divergence.Params{MinSupport: 0.13, K: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := divergence.Find(in, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem33WorstCase: the exponential construction of Figure 2;
// the result size is C(n, n/2).
func BenchmarkTheorem33WorstCase(b *testing.B) {
	const n = 12
	in, err := synth.WorstCase(n).Input()
	if err != nil {
		b.Fatal(err)
	}
	params := core.GlobalParams{MinSize: 2, KMin: n, KMax: n, Lower: []int{n/2 + 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.GlobalBounds(in, params)
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.At(n)); got != 924 { // C(12,6)
			b.Fatalf("worst case returned %d groups", got)
		}
	}
}

// BenchmarkNodesExaminedReport: the Section VI-B nodes-examined comparison
// across all datasets and both measures.
func BenchmarkNodesExaminedReport(b *testing.B) {
	cfg := exp.Defaults()
	cfg.Timeout = 0
	bundles := []*synth.Bundle{
		benchBundles()["compas"], benchBundles()["student"], benchBundles()["german"],
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.NodesExamined(bundles, benchAttrs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionExposure compares the exposure-measure baseline to its
// incremental counterpart (an extension beyond the paper, same skeleton as
// Figure 9's comparison).
func BenchmarkExtensionExposure(b *testing.B) {
	in := benchInput(b, "german", benchAttrs)
	params := core.ExposureParams{MinSize: 50, KMin: 10, KMax: 200, Alpha: 0.8}
	b.Run("IterTD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.IterTDExposure(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ExposureBounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ExposureBounds(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionUpper compares the upper-bound baseline to its
// incremental counterpart.
func BenchmarkExtensionUpper(b *testing.B) {
	in := benchInput(b, "german", benchAttrs)
	params := core.GlobalUpperParams{MinSize: 50, KMin: 10, KMax: 200, Upper: core.ConstantBounds(10, 200, 8)}
	b.Run("IterTD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.IterTDGlobalUpper(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GlobalUpperBounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GlobalUpperBounds(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLatticeParallel measures the intra-search worker fan-out of the
// optimized algorithms at 1/2/4/8 workers on two workloads: the german
// staircase sweep (the paper's hardest real-dataset point, τs=10) and the
// Theorem 3.3 worst-case construction, whose C(n, n/2) mutually
// incomparable result groups make the domination filter the dominant cost.
// Serial and parallel runs return byte-identical results (see
// TestQuickParallelMatchesSerial), so the only difference is wall clock.
func BenchmarkLatticeParallel(b *testing.B) {
	ctx := context.Background()
	german := benchInput(b, "german", benchAttrs)
	gp := core.GlobalParams{MinSize: 10, KMin: 10, KMax: 49, Lower: core.StaircaseBounds(10, 49, 10, 10, 10)}
	pp := core.PropParams{MinSize: 10, KMin: 10, KMax: 49, Alpha: 0.8}
	const wcN = 15
	worst, err := synth.WorstCase(wcN).Input()
	if err != nil {
		b.Fatal(err)
	}
	wp := core.GlobalParams{MinSize: 2, KMin: wcN, KMax: wcN, Lower: []int{wcN/2 + 1}}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("german-global/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GlobalBoundsCtx(ctx, german, gp, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("german-prop/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PropBoundsCtx(ctx, german, pp, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("worstcase/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GlobalBoundsCtx(ctx, worst, wp, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexedSearch is the PR 4 rank-space search series: the same
// GLOBALBOUNDS/PROPBOUNDS workloads run on the two match-set engines, at
// 1/2/4/8 workers.
//
//   - lists: the materialized row-list engine (pre-PR behavior) — every
//     full build scans the dataset to seed root match lists and
//     partitions two lists per node below.
//   - index-cold: the rank-space engine building its posting-list index
//     inside the search (a fresh Input nobody indexed before).
//   - index-warm: the rank-space engine over a pre-built index (the
//     cached-Analyst serving case) — root nodes alias posting lists, so
//     the search starts with zero setup scans.
//   - bitmap-warm: the rank-space engine over the same pre-built index
//     with bitmap counting forced — step-time re-materialization runs
//     word-wise AND + popcount over the index's roaring-style bitmaps
//     wherever every bound value has one.
//
// The light workload (high threshold, narrow k range) isolates the setup
// scans the warm index deletes; the sweep workloads show the halved
// partition traffic on deep lattices. All engines return byte-identical
// results (TestQuickStrategyIndexMatchesLists), so only wall clock and
// allocations differ.
func BenchmarkIndexedSearch(b *testing.B) {
	ctx := context.Background()
	german := benchInput(b, "german", benchAttrs)
	ix := count.Build(german.Rows, german.Space, german.Ranking)
	gp := core.GlobalParams{MinSize: 10, KMin: 10, KMax: 49, Lower: core.StaircaseBounds(10, 49, 10, 10, 10)}
	pp := core.PropParams{MinSize: 10, KMin: 10, KMax: 49, Alpha: 0.8}
	lightParams := core.PropParams{MinSize: 200, KMin: 10, KMax: 12, Alpha: 0.8}
	engines := []struct {
		name     string
		strategy core.Strategy
		ix       *count.Index
	}{
		{"lists", core.StrategyLists, nil},
		{"index-cold", core.StrategyIndex, nil},
		{"index-warm", core.StrategyIndex, ix},
		{"bitmap-warm", core.StrategyBitmap, ix},
	}
	for _, eng := range engines {
		in := *german
		in.Strategy = eng.strategy
		in.Index = eng.ix
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("global/%s/workers=%d", eng.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.GlobalBoundsCtx(ctx, &in, gp, w); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("prop/%s/workers=%d", eng.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.PropBoundsCtx(ctx, &in, pp, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("light-prop/%s", eng.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PropBoundsCtx(ctx, &in, lightParams, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The snapshot-dominated workload (PR 5 satellite): a wide k range
		// at τs=10 makes the per-k Res recomputation — sortNodesInterned +
		// the mask-prefiltered markDominated — the dominant cost, so this
		// series tracks the snapshot path itself rather than the tree walk.
		b.Run(fmt.Sprintf("prop-wide/%s", eng.name), func(b *testing.B) {
			wide := core.PropParams{MinSize: 10, KMin: 10, KMax: 200, Alpha: 0.8}
			for i := 0; i < b.N; i++ {
				if _, err := core.PropBoundsCtx(ctx, &in, wide, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionParallelBaseline measures the per-k fan-out of the
// ITERTD baseline across workers.
func BenchmarkExtensionParallelBaseline(b *testing.B) {
	in := benchInput(b, "german", benchAttrs)
	params := core.GlobalParams{MinSize: 50, KMin: 10, KMax: 120, Lower: core.StaircaseBounds(10, 120, 10, 10, 10)}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.IterTDGlobal(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.IterTDGlobalParallel(in, params, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceAudit measures one audit through the rankfaird serving
// layer (submit → worker → report) at three cache temperatures:
//
//   - cold: fresh parameters per iteration AND the analyst cache disabled,
//     so every audit re-ranks, re-indexes and re-searches — the pre-reuse
//     behavior.
//   - warm-analyst: fresh parameters per iteration (result-cache miss) but
//     the analyst cache on, so audits sharing a ranker skip re-ranking and
//     reuse the counting index; the gap to cold is what Analyst reuse buys.
//   - cached: one repeated audit, served from the result cache.
func BenchmarkServiceAudit(b *testing.B) {
	bundle := benchBundles()["german"]
	var csv bytes.Buffer
	if err := rankfair.WriteCSV(&csv, bundle.Table); err != nil {
		b.Fatal(err)
	}

	newService := func(b *testing.B, analystEntries int) (*service.Service, service.DatasetInfo) {
		b.Helper()
		svc, err := service.New(service.Config{
			Workers: 2, QueueDepth: 256, CacheEntries: 1024,
			AnalystCacheEntries: analystEntries,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { svc.Shutdown(context.Background()) })
		info, _, err := svc.Registry().Add("german", csv.Bytes(), rankfair.CSVOptions{})
		if err != nil {
			b.Fatal(err)
		}
		return svc, info
	}
	auditReq := func(id string, alpha float64) service.AuditRequest {
		return service.AuditRequest{
			Dataset: id,
			Ranker:  service.RankerSpec{Columns: []service.ColumnKeySpec{{Column: "credit_score", Descending: true}}},
			Params: rankfair.AuditParams{
				Measure: rankfair.MeasureProp, MinSize: 50, KMin: 10, KMax: 49, Alpha: alpha,
			},
		}
	}
	// lightReq keeps the lattice search tiny (narrow k range, high
	// threshold), so the re-rank + re-index cost the analyst cache saves
	// is a visible fraction of the audit.
	lightReq := func(id string, alpha float64) service.AuditRequest {
		return service.AuditRequest{
			Dataset: id,
			Ranker:  service.RankerSpec{Columns: []service.ColumnKeySpec{{Column: "credit_score", Descending: true}}},
			Params: rankfair.AuditParams{
				Measure: rankfair.MeasureProp, MinSize: 200, KMin: 10, KMax: 12, Alpha: alpha,
			},
		}
	}
	runAudit := func(b *testing.B, svc *service.Service, req service.AuditRequest) {
		b.Helper()
		view, err := svc.SubmitAudit(req)
		if err != nil {
			b.Fatal(err)
		}
		final, err := svc.Jobs().Wait(context.Background(), view.ID)
		if err != nil {
			b.Fatal(err)
		}
		if final.Status != service.JobDone {
			b.Fatalf("audit ended %s: %s", final.Status, final.Error)
		}
	}

	b.Run("cold", func(b *testing.B) {
		svc, info := newService(b, -1)
		for i := 0; i < b.N; i++ {
			// A unique alpha per iteration gives every audit a distinct
			// cache key, forcing the full lattice search.
			runAudit(b, svc, auditReq(info.ID, 0.8+float64(i)*1e-9))
		}
	})
	b.Run("warm-analyst", func(b *testing.B) {
		svc, info := newService(b, 32)
		runAudit(b, svc, auditReq(info.ID, 0.8)) // build + cache the analyst
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runAudit(b, svc, auditReq(info.ID, 0.8+float64(i+1)*1e-9))
		}
	})
	b.Run("cached", func(b *testing.B) {
		svc, info := newService(b, 32)
		runAudit(b, svc, auditReq(info.ID, 0.8)) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runAudit(b, svc, auditReq(info.ID, 0.8))
		}
	})
	b.Run("light/cold", func(b *testing.B) {
		svc, info := newService(b, -1)
		for i := 0; i < b.N; i++ {
			runAudit(b, svc, lightReq(info.ID, 0.8+float64(i)*1e-9))
		}
	})
	b.Run("light/warm-analyst", func(b *testing.B) {
		svc, info := newService(b, 32)
		runAudit(b, svc, lightReq(info.ID, 0.8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runAudit(b, svc, lightReq(info.ID, 0.8+float64(i+1)*1e-9))
		}
	})
}

// BenchmarkStreamAppend measures advancing a dataset by one batch, from a
// warm analyst to a warm analyst for the new generation, on the two append
// paths of the streaming ingestion subsystem:
//
//   - incremental: Dataset.AppendRows (schema-checked column extension) +
//     Analyst.Append (ranking merge-insert, copy-on-write posting-list
//     maintenance, aliased row prefix) — what rankfaird does below the
//     cost model's cut-over.
//   - rebuild: re-decode the concatenated CSV + rankfair.New + Warm (full
//     re-rank and index build) — the fallback path, and exactly what a
//     fresh upload pays.
//
// Batch rows are drawn from the same score distribution as the base, so
// insertions spread across the whole ranking — the copy-on-write path's
// worst case (bottom-of-ranking appends alias almost every posting list).
// The cost model (stream.CostModel) governs the crossover; the incremental
// path must win clearly at small b.
func BenchmarkStreamAppend(b *testing.B) {
	const nBase = 20000
	for _, batch := range []int{1, 16, 256, 4096} {
		bundle := synth.GermanCredit(nBase+batch, 41)
		baseCSV, fullCSV, records := splitCSV(b, bundle.Table, nBase)
		base, err := rankfair.ReadCSV(strings.NewReader(baseCSV), rankfair.CSVOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ranker := &rankfair.ByColumns{Keys: []rankfair.ColumnKey{{Column: "credit_score", Descending: true}}}
		baseAnalyst, err := rankfair.New(base, ranker)
		if err != nil {
			b.Fatal(err)
		}
		baseAnalyst.Warm()
		b.Run(fmt.Sprintf("incremental/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl, err := base.AppendRows(records)
				if err != nil {
					b.Fatal(err)
				}
				a, err := baseAnalyst.Append(tbl, ranker)
				if err != nil {
					b.Fatal(err)
				}
				benchSinkAnalyst = a
			}
		})
		b.Run(fmt.Sprintf("rebuild/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl, err := rankfair.ReadCSV(strings.NewReader(fullCSV), rankfair.CSVOptions{})
				if err != nil {
					b.Fatal(err)
				}
				a, err := rankfair.New(tbl, ranker)
				if err != nil {
					b.Fatal(err)
				}
				a.Warm()
				benchSinkAnalyst = a
			}
		})
	}
}

// benchSinkAnalyst keeps the append results live so the compiler cannot
// elide the work.
var benchSinkAnalyst *rankfair.Analyst

// BenchmarkExtensionRepair measures the FairTopK constrained selection.
func BenchmarkExtensionRepair(b *testing.B) {
	bundle := benchBundles()["german"]
	in, err := bundle.Input()
	if err != nil {
		b.Fatal(err)
	}
	scores := make([]float64, len(in.Rows))
	groupOf := make([]int, len(in.Rows))
	card := in.Space.Cards[0]
	for pos, ri := range in.Ranking {
		scores[ri] = -float64(pos)
	}
	for i, row := range in.Rows {
		groupOf[i] = int(row[0])
	}
	constraints := make([]rank.FairTopKConstraint, card)
	for g := range constraints {
		constraints[g].Lower = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rank.FairTopK(scores, groupOf, 100, constraints); err != nil {
			b.Fatal(err)
		}
	}
}
