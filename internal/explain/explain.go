// Package explain implements the paper's result analysis (Section V): given
// a detected group with biased representation, it trains a regression model
// M_R simulating the black-box ranker on D_R = {(t, R(D)[t])}, computes
// aggregated Shapley values of every attribute over the group's tuples, and
// compares the value distribution of the most influential attribute between
// the top-k tuples and the group (Figures 10a-10f).
package explain

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"rankfair/internal/core"
	"rankfair/internal/count"
	"rankfair/internal/pattern"
	"rankfair/internal/rank"
	"rankfair/internal/regress"
	"rankfair/internal/shapley"
	"rankfair/internal/stats"
)

// ModelKind selects the regression model simulating the ranker.
type ModelKind int

const (
	// RidgeModel trains a one-hot ridge regression (the default).
	RidgeModel ModelKind = iota
	// TreeModel trains a CART regression tree.
	TreeModel
)

// Options tunes the explanation pipeline. The zero value selects sensible
// defaults (ridge with λ=1, 32 permutations, 64 background rows, top 6
// attributes as in Figure 10).
type Options struct {
	// Model selects the surrogate regression model.
	Model ModelKind
	// Lambda is the ridge regularization strength; <= 0 means 1.
	Lambda float64
	// Tree holds CART parameters when Model == TreeModel.
	Tree regress.TreeParams
	// Permutations is the sampling budget per tuple; <= 0 means 32.
	Permutations int
	// BackgroundSize is the background sample size; <= 0 means 64.
	BackgroundSize int
	// TopAttrs is how many attributes to keep in the report; <= 0 means 6.
	TopAttrs int
	// Exact switches to the exact Shapley estimator (subset enumeration);
	// it fails beyond shapley.MaxExactAttrs attributes.
	Exact bool
	// Seed drives all sampling; explanations are deterministic per seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Lambda <= 0 {
		o.Lambda = 1
	}
	if o.Permutations <= 0 {
		o.Permutations = 32
	}
	if o.BackgroundSize <= 0 {
		o.BackgroundSize = 64
	}
	if o.TopAttrs <= 0 {
		o.TopAttrs = 6
	}
	return o
}

// AttrShapley is one attribute's aggregated Shapley value for a group.
type AttrShapley struct {
	// Attr is the attribute index in the input space.
	Attr int
	// Name is the attribute name.
	Name string
	// Value is the aggregated Shapley value. The surrogate predicts rank
	// positions (1 = best), so negative values push the group toward the
	// top and positive values toward the bottom.
	Value float64
}

// Explanation is the result of explaining one detected group.
type Explanation struct {
	// Pattern is the explained group.
	Pattern pattern.Pattern
	// GroupSize is the number of tuples satisfying the pattern.
	GroupSize int
	// K is the prefix length the group was detected at.
	K int
	// Shapley lists the top attributes by |aggregated Shapley value|,
	// descending (Figure 10a-10c).
	Shapley []AttrShapley
	// AllShapley lists every attribute, same ordering.
	AllShapley []AttrShapley
	// Comparison contrasts the top attribute's value distribution between
	// the top-k and the group (Figure 10d-10f).
	Comparison *stats.Comparison
	// Fidelity reports how faithfully the surrogate reproduces the
	// black-box ranking it explains.
	Fidelity Fidelity
}

// Fidelity quantifies surrogate quality: Shapley values explain the
// surrogate, so they only transfer to the black-box ranker to the extent
// the surrogate tracks it.
type Fidelity struct {
	// R2 is the coefficient of determination of predicted vs actual rank
	// positions (1 = perfect).
	R2 float64
	// Spearman is the rank correlation between the surrogate-induced
	// ordering and the actual ranking (1 = identical order).
	Spearman float64
}

// Explain runs the Section V pipeline for one detected pattern at prefix
// length k. dicts optionally supplies the value labels of each attribute
// (from dataset.Table.CatDicts) for the distribution report.
func Explain(in *core.Input, dicts [][]string, p pattern.Pattern, k int, opts Options) (*Explanation, error) {
	return ExplainIndexed(in, nil, dicts, p, k, opts)
}

// ExplainIndexed is Explain with group membership answered by a shared
// counting index instead of dataset scans; ix may be nil, restoring the
// scanning path. Both paths gather members in dataset row order, so the
// seeded Shapley sampling — and therefore the whole explanation — is
// identical between them.
func ExplainIndexed(in *core.Input, ix *count.Index, dicts [][]string, p pattern.Pattern, k int, opts Options) (*Explanation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(p) != in.Space.NumAttrs() {
		return nil, fmt.Errorf("explain: pattern has %d attributes, space has %d", len(p), in.Space.NumAttrs())
	}
	if k < 1 || k > len(in.Rows) {
		return nil, fmt.Errorf("explain: k=%d outside [1,%d]", k, len(in.Rows))
	}
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))

	model, enc, err := FitSurrogate(in, o)
	if err != nil {
		return nil, err
	}

	// Background: a uniform sample of the dataset.
	bg := make([][]int32, 0, o.BackgroundSize)
	for _, i := range rng.Perm(len(in.Rows)) {
		bg = append(bg, in.Rows[i])
		if len(bg) == o.BackgroundSize {
			break
		}
	}
	ex, err := shapley.NewExplainer(model, enc, bg)
	if err != nil {
		return nil, err
	}
	members := groupMembers(in, ix, p)
	var agg []float64
	var size int
	if o.Exact {
		agg, size, err = ex.AggregateRowsExact(members, p)
	} else {
		agg, size, err = ex.AggregateRows(members, p, o.Permutations, rng)
	}
	if err != nil {
		return nil, err
	}

	all := make([]AttrShapley, len(agg))
	for a, v := range agg {
		all[a] = AttrShapley{Attr: a, Name: in.Space.Names[a], Value: v}
	}
	sort.Slice(all, func(i, j int) bool {
		ai, aj := abs(all[i].Value), abs(all[j].Value)
		if ai != aj {
			return ai > aj
		}
		return all[i].Attr < all[j].Attr
	})
	top := o.TopAttrs
	if top > len(all) {
		top = len(all)
	}

	expl := &Explanation{
		Pattern:    p,
		GroupSize:  size,
		K:          k,
		Shapley:    all[:top],
		AllShapley: all,
	}
	expl.Comparison = compareMembers(in, dicts, members, k, all[0].Attr)
	if expl.Fidelity, err = surrogateFidelity(in, model, enc); err != nil {
		return nil, err
	}
	return expl, nil
}

// groupMembers gathers the tuples satisfying p in dataset row order, via
// the counting index when one is available.
func groupMembers(in *core.Input, ix *count.Index, p pattern.Pattern) [][]int32 {
	if ix == nil {
		var members [][]int32
		for _, row := range in.Rows {
			if p.Matches(row) {
				members = append(members, row)
			}
		}
		return members
	}
	rowIdx := ix.MatchRows(p)
	members := make([][]int32, len(rowIdx))
	for i, ri := range rowIdx {
		members[i] = in.Rows[ri]
	}
	return members
}

// surrogateFidelity measures the surrogate against the true ranking: R² of
// predicted vs actual positions, and Spearman correlation between the
// surrogate-induced order and the black box's order.
func surrogateFidelity(in *core.Input, model regress.Model, enc *regress.Encoder) (Fidelity, error) {
	pos := rank.Positions(in.Ranking)
	preds := make([]float64, len(in.Rows))
	buf := make([]float64, enc.Width())
	yMean := 0.0
	for i, row := range in.Rows {
		enc.Encode(row, buf)
		preds[i] = model.Predict(buf)
		yMean += float64(pos[i] + 1)
	}
	yMean /= float64(len(in.Rows))
	ssRes, ssTot := 0.0, 0.0
	for i := range preds {
		y := float64(pos[i] + 1)
		ssRes += (y - preds[i]) * (y - preds[i])
		ssTot += (y - yMean) * (y - yMean)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	// Surrogate predicts positions: lower is better, so its induced
	// ranking sorts predictions ascending.
	neg := make([]float64, len(preds))
	for i, v := range preds {
		neg[i] = -v
	}
	rho, err := rank.SpearmanRho(rank.ByScoresDesc(neg), in.Ranking)
	if err != nil {
		return Fidelity{}, err
	}
	return Fidelity{R2: r2, Spearman: rho}, nil
}

// FitSurrogate trains the regression model M_R on D_R = {(t, R(D)[t])}:
// every tuple labeled with its 1-based rank position.
func FitSurrogate(in *core.Input, opts Options) (regress.Model, *regress.Encoder, error) {
	o := opts.withDefaults()
	enc := regress.NewEncoder(in.Space)
	X := enc.EncodeAll(in.Rows)
	pos := rank.Positions(in.Ranking)
	y := make([]float64, len(in.Rows))
	for i := range y {
		y[i] = float64(pos[i] + 1)
	}
	switch o.Model {
	case RidgeModel:
		m, err := regress.FitRidge(X, y, o.Lambda)
		if err != nil {
			return nil, nil, fmt.Errorf("explain: fitting surrogate: %w", err)
		}
		return m, enc, nil
	case TreeModel:
		m, err := regress.FitTree(X, y, o.Tree)
		if err != nil {
			return nil, nil, fmt.Errorf("explain: fitting surrogate: %w", err)
		}
		return m, enc, nil
	default:
		return nil, nil, errors.New("explain: unknown model kind")
	}
}

// CompareDistributions builds the Figure 10d-10f comparison of attribute
// attr between the top-k tuples and the tuples satisfying p.
func CompareDistributions(in *core.Input, dicts [][]string, p pattern.Pattern, k, attr int) *stats.Comparison {
	return compareMembers(in, dicts, groupMembers(in, nil, p), k, attr)
}

// compareMembers is CompareDistributions over a pre-gathered member list.
func compareMembers(in *core.Input, dicts [][]string, members [][]int32, k, attr int) *stats.Comparison {
	card := in.Space.Cards[attr]
	var labels []string
	if dicts != nil && attr < len(dicts) {
		labels = dicts[attr]
	}
	topCodes := make([]int32, 0, k)
	for _, ri := range in.Ranking[:k] {
		topCodes = append(topCodes, in.Rows[ri][attr])
	}
	groupCodes := make([]int32, len(members))
	for i, row := range members {
		groupCodes[i] = row[attr]
	}
	return &stats.Comparison{
		Attribute: in.Space.Names[attr],
		TopK:      stats.NewHistogram(topCodes, card, labels),
		Group:     stats.NewHistogram(groupCodes, card, labels),
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
