package core

// Ablation benchmarks for the implementation choices documented in
// DESIGN.md §4:
//
//  1. match-list partitioning — Algorithm 1 computes children sizes by
//     splitting the parent's matching-row lists instead of rescanning the
//     dataset per pattern (scanTopDownSearch below is the textbook
//     re-scanning variant);
//  2. incremental search — GLOBALBOUNDS/PROPBOUNDS vs re-running Algorithm
//     1 per k (measured against IterTD*, which the figure benchmarks at the
//     repository root also cover).
//
// The scan variant doubles as an extra correctness oracle for the
// optimized traversal.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankfair/internal/pattern"
)

// scanTopDownSearch is Algorithm 1 with per-pattern dataset scans: the
// straightforward implementation whose cost the match-list partitioning
// avoids. Results are identical to topDownSearch.
func scanTopDownSearch(in *Input, minSize, k int, meas measure, stats *Stats) (res, dres []pattern.Pattern) {
	stats.FullSearches++
	n := in.Space.NumAttrs()
	queue := pattern.Empty(n).Children(in.Space)
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		stats.NodesExamined++
		sD := p.Count(in.Rows)
		if sD < minSize {
			continue
		}
		cnt := p.CountTopK(in.Rows, in.Ranking, k)
		if meas.biased(sD, cnt, k) {
			if hasProperSubset(res, p) {
				dres = append(dres, p)
			} else {
				res = append(res, p)
			}
			continue
		}
		queue = append(queue, p.Children(in.Space)...)
	}
	return res, dres
}

// TestScanSearchMatchesPartitionedSearch cross-checks the two Algorithm 1
// implementations on random inputs.
func TestScanSearchMatchesPartitionedSearch(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttrs := 2 + rng.Intn(3)
		cards := make([]int, nAttrs)
		names := make([]string, nAttrs)
		for i := range cards {
			cards[i] = 2 + rng.Intn(2)
			names[i] = "A"
		}
		nRows := 20 + rng.Intn(40)
		rows := make([][]int32, nRows)
		for i := range rows {
			r := make([]int32, nAttrs)
			for j := range r {
				r[j] = int32(rng.Intn(cards[j]))
			}
			rows[i] = r
		}
		in := &Input{Rows: rows, Space: &pattern.Space{Names: names, Cards: cards}, Ranking: rng.Perm(nRows)}
		k := 1 + rng.Intn(nRows)
		minSize := 1 + rng.Intn(4)
		l := 1 + rng.Intn(3)
		meas := globalMeasure{params: &GlobalParams{KMin: k, KMax: k, Lower: []int{l}, MinSize: minSize}}
		var s1, s2 Stats
		res1, dres1 := topDownSearch(&canceler{}, newEngine(in), minSize, k, meas, &s1, nil)
		res2, dres2 := scanTopDownSearch(in, minSize, k, meas, &s2)
		return samePatternSet(res1, res2) && samePatternSet(dres1, dres2) &&
			s1.NodesExamined == s2.NodesExamined
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func samePatternSet(a, b []pattern.Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, p := range a {
		seen[p.Key()]++
	}
	for _, p := range b {
		seen[p.Key()]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

// ablationInput builds a 1000×8 categorical dataset with mildly correlated
// attributes and a score-driven ranking, shaped like the German Credit
// workload (internal/synth cannot be imported here without a test cycle).
func ablationInput(b *testing.B) *Input {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	const nRows, nAttrs = 1000, 8
	cards := []int{4, 4, 3, 4, 5, 3, 4, 2}
	names := make([]string, nAttrs)
	for i := range names {
		names[i] = "A"
	}
	rows := make([][]int32, nRows)
	scores := make([]float64, nRows)
	for i := range rows {
		quality := rng.NormFloat64()
		r := make([]int32, nAttrs)
		for j := range r {
			v := int(float64(cards[j])*(0.5+0.18*quality) + rng.Float64()*float64(cards[j])*0.6)
			if v < 0 {
				v = 0
			}
			if v >= cards[j] {
				v = cards[j] - 1
			}
			r[j] = int32(v)
		}
		rows[i] = r
		scores[i] = quality + 0.2*rng.NormFloat64()
	}
	perm := make([]int, nRows)
	for i := range perm {
		perm[i] = i
	}
	for i := 1; i < nRows; i++ {
		for j := i; j > 0 && scores[perm[j]] > scores[perm[j-1]]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return &Input{Rows: rows, Space: &pattern.Space{Names: names, Cards: cards}, Ranking: perm}
}

// BenchmarkAblationCounting compares the two Algorithm 1 implementations:
// match-list partitioning (used everywhere) vs per-pattern dataset scans.
func BenchmarkAblationCounting(b *testing.B) {
	in := ablationInput(b)
	meas := globalMeasure{params: &GlobalParams{KMin: 40, KMax: 40, Lower: []int{20}, MinSize: 20}}
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s Stats
			topDownSearch(&canceler{}, newEngine(in), 20, 40, meas, &s, nil)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s Stats
			scanTopDownSearch(in, 20, 40, meas, &s)
		}
	})
}

// BenchmarkAblationIncremental isolates the paper's core optimization: the
// per-k incremental update of GLOBALBOUNDS vs a fresh search per k.
func BenchmarkAblationIncremental(b *testing.B) {
	in := ablationInput(b)
	params := GlobalParams{MinSize: 20, KMin: 10, KMax: 200, Lower: ConstantBounds(10, 200, 8)}
	b.Run("rebuild-per-k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := IterTDGlobal(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GlobalBounds(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKtildeScheduling isolates PROPBOUNDS' k̃ bucket queue
// against the per-k rebuild.
func BenchmarkAblationKtildeScheduling(b *testing.B) {
	in := ablationInput(b)
	params := PropParams{MinSize: 20, KMin: 10, KMax: 200, Alpha: 0.8}
	b.Run("rebuild-per-k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := IterTDProp(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PropBounds(in, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPatternOps measures the hot pattern primitives.
func BenchmarkPatternOps(b *testing.B) {
	in := ablationInput(b)
	p := pattern.Empty(in.Space.NumAttrs()).With(0, 1).With(3, 0)
	b.Run("Matches", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Matches(in.Rows[i%len(in.Rows)])
		}
	})
	b.Run("Count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Count(in.Rows)
		}
	})
	b.Run("Children", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Children(in.Space)
		}
	})
}
