package rankfair_test

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strings"
	"testing"

	"rankfair"
	"rankfair/internal/core"
	"rankfair/internal/synth"
)

// splitCSV renders a table to CSV and splits it into a base prefix (header
// + n rows), the remaining records, and the full CSV — the two upload
// routes the append differential compares.
func splitCSV(t testing.TB, table *rankfair.Dataset, n int) (baseCSV, fullCSV string, batch [][]string) {
	t.Helper()
	var buf bytes.Buffer
	if err := rankfair.WriteCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	fullCSV = buf.String()
	records, err := csv.NewReader(strings.NewReader(fullCSV)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if n+1 > len(records) {
		t.Fatalf("split %d beyond %d records", n, len(records)-1)
	}
	var base bytes.Buffer
	w := csv.NewWriter(&base)
	if err := w.WriteAll(records[:n+1]); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	return base.String(), fullCSV, records[n+1:]
}

// streamAuditParams returns one parameter set per measure, sized for the
// german bench bundle.
func streamAuditParams(kMin, kMax int) []rankfair.AuditParams {
	return []rankfair.AuditParams{
		{Measure: rankfair.MeasureGlobal, MinSize: 20, KMin: kMin, KMax: kMax,
			Lower: rankfair.StaircaseBounds(kMin, kMax, 5, 5, 10)},
		{Measure: rankfair.MeasureProp, MinSize: 20, KMin: kMin, KMax: kMax, Alpha: 0.8},
		{Measure: rankfair.MeasureGlobalUpper, MinSize: 20, KMin: kMin, KMax: kMax,
			Upper: rankfair.ConstantBounds(kMin, kMax, 8)},
		{Measure: rankfair.MeasurePropUpper, MinSize: 20, KMin: kMin, KMax: kMax, Beta: 1.2},
		{Measure: rankfair.MeasureExposure, MinSize: 20, KMin: kMin, KMax: kMax, Alpha: 0.8},
	}
}

// TestAppendDifferential is the tentpole guarantee of the streaming
// subsystem: append-then-audit must be byte-identical to
// fresh-upload-then-audit for every measure, on both match-set engines,
// serial and parallel.
func TestAppendDifferential(t *testing.T) {
	bundle := synth.GermanCredit(440, 17)
	baseCSV, fullCSV, batch := splitCSV(t, bundle.Table, 400)
	base, err := rankfair.ReadCSV(strings.NewReader(baseCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := rankfair.ReadCSV(strings.NewReader(fullCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appended, err := base.AppendRows(batch)
	if err != nil {
		t.Fatal(err)
	}

	ranker := &rankfair.ByColumns{Keys: []rankfair.ColumnKey{{Column: "credit_score", Descending: true}}}
	baseAnalyst, err := rankfair.New(base, ranker)
	if err != nil {
		t.Fatal(err)
	}
	baseAnalyst.Warm()
	appAnalyst, err := baseAnalyst.Append(appended, ranker)
	if err != nil {
		t.Fatal(err)
	}
	freshAnalyst, err := rankfair.New(full, ranker)
	if err != nil {
		t.Fatal(err)
	}

	strategies := []struct {
		name string
		s    core.Strategy
	}{{"lists", core.StrategyLists}, {"index", core.StrategyIndex}, {"bitmap", core.StrategyBitmap}}
	for _, strat := range strategies {
		for _, workers := range []int{1, 4} {
			for _, params := range streamAuditParams(10, 49) {
				params.Workers = workers
				name := fmt.Sprintf("%s/%s/workers=%d", params.Measure, strat.name, workers)
				t.Run(name, func(t *testing.T) {
					appAnalyst.Input().Strategy = strat.s
					freshAnalyst.Input().Strategy = strat.s
					got := detectJSON(t, appAnalyst, params)
					want := detectJSON(t, freshAnalyst, params)
					if got != want {
						t.Fatalf("append-then-audit diverges from fresh-upload-then-audit\nappend: %.400s\nfresh:  %.400s", got, want)
					}
				})
			}
		}
	}
}

// detectJSON runs one audit and serializes the report.
func detectJSON(t testing.TB, a *rankfair.Analyst, params rankfair.AuditParams) string {
	t.Helper()
	report, err := a.Detect(params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestAppendFallbackRankers: rankers without incremental support must take
// the rebuild fallback and still produce correct analysts.
func TestAppendFallbackRankers(t *testing.T) {
	bundle := synth.GermanCredit(120, 3)
	baseCSV, fullCSV, batch := splitCSV(t, bundle.Table, 100)
	base, err := rankfair.ReadCSV(strings.NewReader(baseCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := rankfair.ReadCSV(strings.NewReader(fullCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appended, err := base.AppendRows(batch)
	if err != nil {
		// Schema drift: the service layer re-decodes the concatenated CSV;
		// do the same here (this test targets the ranker fallback, not the
		// table fast path).
		appended = full
	}
	// Linear normalizes over the whole column, so appends can reorder
	// existing rows; Append must fall back to a full re-rank and still
	// agree with the fresh analyst.
	ranker := &rankfair.Linear{Columns: []string{"credit_score"}}
	baseAnalyst, err := rankfair.New(base, ranker)
	if err != nil {
		t.Fatal(err)
	}
	appAnalyst, err := baseAnalyst.Append(appended, ranker)
	if err != nil {
		t.Fatal(err)
	}
	freshAnalyst, err := rankfair.New(full, ranker)
	if err != nil {
		t.Fatal(err)
	}
	params := rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 10, KMin: 5, KMax: 30, Alpha: 0.8}
	if got, want := detectJSON(t, appAnalyst, params), detectJSON(t, freshAnalyst, params); got != want {
		t.Fatal("fallback append diverges from fresh analyst")
	}
}

// TestAppendRescoredPrefixFallsBack: a table whose numeric prefix was
// altered does not extend the analyst's dataset — the merge-insert would
// binary-search a ranking the new scores no longer sort — so Append must
// take the rebuild fallback and agree with a fresh analyst.
func TestAppendRescoredPrefixFallsBack(t *testing.T) {
	baseCSV := "g,score\nA,3\nB,1\nA,2\nB,4\n"
	base, err := rankfair.ReadCSV(strings.NewReader(baseCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same shape, same categorical codes, different scores in the prefix.
	rescoredCSV := "g,score\nA,1\nB,3\nA,4\nB,2\nA,5\n"
	rescored, err := rankfair.ReadCSV(strings.NewReader(rescoredCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ranker := &rankfair.ByColumns{Keys: []rankfair.ColumnKey{{Column: "score", Descending: true}}}
	baseAnalyst, err := rankfair.New(base, ranker)
	if err != nil {
		t.Fatal(err)
	}
	baseAnalyst.Warm()
	appended, err := baseAnalyst.Append(rescored, ranker)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rankfair.New(rescored, ranker)
	if err != nil {
		t.Fatal(err)
	}
	params := rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 1, KMin: 1, KMax: 5, Alpha: 0.8}
	if got, want := detectJSON(t, appended, params), detectJSON(t, fresh, params); got != want {
		t.Fatalf("rescored-prefix append diverged from fresh analyst\ngot:  %s\nwant: %s", got, want)
	}
}

// TestAppendNaNScoresStayExact: NaN in the sort-key column is rejected by
// the incremental ranker (it breaks the comparator's strict weak order),
// so Append must fall back to a full re-rank and remain byte-identical to
// a fresh analyst over the same table.
func TestAppendNaNScoresStayExact(t *testing.T) {
	baseCSV := "g,score\nA,3\nB,NaN\nA,2\nB,4\nA,1\nB,0\n"
	base, err := rankfair.ReadCSV(strings.NewReader(baseCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]string{{"A", "2.5"}, {"B", "NaN"}}
	appendedTable, err := base.AppendRows(batch)
	if err != nil {
		t.Fatal(err) // NaN parses as a float: no schema drift
	}
	ranker := &rankfair.ByColumns{Keys: []rankfair.ColumnKey{{Column: "score", Descending: true}}}
	baseAnalyst, err := rankfair.New(base, ranker)
	if err != nil {
		t.Fatal(err)
	}
	baseAnalyst.Warm()
	appAnalyst, err := baseAnalyst.Append(appendedTable, ranker)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rankfair.New(appendedTable, ranker)
	if err != nil {
		t.Fatal(err)
	}
	params := rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 1, KMin: 1, KMax: 8, Alpha: 0.8}
	if got, want := detectJSON(t, appAnalyst, params), detectJSON(t, fresh, params); got != want {
		t.Fatalf("NaN-score append diverged from fresh analyst\ngot:  %s\nwant: %s", got, want)
	}
}

// FuzzStreamAppend fuzzes the append differential: random split points and
// batch perturbations over the german bundle must keep append-then-audit
// byte-identical to fresh-upload-then-audit. Wired into the CI fuzz-smoke
// step alongside the decoder and intersection targets.
func FuzzStreamAppend(f *testing.F) {
	bundle := synth.GermanCredit(160, 29)
	var buf bytes.Buffer
	if err := rankfair.WriteCSV(&buf, bundle.Table); err != nil {
		f.Fatal(err)
	}
	records, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(100), uint16(4242), false)
	f.Add(uint8(40), uint16(7), true)
	f.Add(uint8(140), uint16(65535), false)
	f.Fuzz(func(t *testing.T, splitByte uint8, scoreBits uint16, descending bool) {
		n := 20 + int(splitByte)%(len(records)-21) // keep >= 20 base rows
		var baseBuf, fullBuf bytes.Buffer
		bw, fw := csv.NewWriter(&baseBuf), csv.NewWriter(&fullBuf)
		scoreCol := -1
		for j, name := range records[0] {
			if name == "credit_score" {
				scoreCol = j
			}
		}
		if scoreCol < 0 {
			t.Skip("no score column")
		}
		// Perturb the batch scores from the fuzz input so insertion
		// positions cover the whole ranking, including heavy ties.
		mutated := make([][]string, len(records))
		for i, rec := range records {
			mutated[i] = rec
			if i > n {
				cp := append([]string(nil), rec...)
				cp[scoreCol] = fmt.Sprintf("%d", int(scoreBits>>(uint(i)%8))%32)
				mutated[i] = cp
			}
		}
		if err := bw.WriteAll(mutated[:n+1]); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		if err := fw.WriteAll(mutated); err != nil {
			t.Fatal(err)
		}
		fw.Flush()
		base, err := rankfair.ReadCSV(bytes.NewReader(baseBuf.Bytes()), rankfair.CSVOptions{})
		if err != nil {
			t.Skip()
		}
		full, err := rankfair.ReadCSV(bytes.NewReader(fullBuf.Bytes()), rankfair.CSVOptions{})
		if err != nil {
			t.Skip()
		}
		appended, err := base.AppendRows(mutated[n+1:])
		if err != nil {
			t.Skip() // schema drift (e.g. a numeric column flips): rebuild territory
		}
		ranker := &rankfair.ByColumns{Keys: []rankfair.ColumnKey{{Column: "credit_score", Descending: descending}}}
		baseAnalyst, err := rankfair.New(base, ranker)
		if err != nil {
			t.Skip()
		}
		appAnalyst, err := baseAnalyst.Append(appended, ranker)
		if err != nil {
			t.Fatal(err)
		}
		freshAnalyst, err := rankfair.New(full, ranker)
		if err != nil {
			t.Fatal(err)
		}
		kMax := 30
		if kMax > full.NumRows() {
			kMax = full.NumRows()
		}
		params := rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 5, KMin: 5, KMax: kMax, Alpha: 0.8}
		if got, want := detectJSON(t, appAnalyst, params), detectJSON(t, freshAnalyst, params); got != want {
			t.Fatalf("append differential violated at n=%d", n)
		}
		gparams := rankfair.AuditParams{Measure: rankfair.MeasureGlobal, MinSize: 5, KMin: 5, KMax: kMax,
			Lower: rankfair.ConstantBounds(5, kMax, 3)}
		if got, want := detectJSON(t, appAnalyst, gparams), detectJSON(t, freshAnalyst, gparams); got != want {
			t.Fatalf("global append differential violated at n=%d", n)
		}
	})
}
