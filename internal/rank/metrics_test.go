package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallTauExtremes(t *testing.T) {
	a := []int{0, 1, 2, 3}
	rev := []int{3, 2, 1, 0}
	if tau, err := KendallTau(a, a); err != nil || tau != 1 {
		t.Errorf("identical tau = %v, %v", tau, err)
	}
	if tau, err := KendallTau(a, rev); err != nil || tau != -1 {
		t.Errorf("reversed tau = %v, %v", tau, err)
	}
	if _, err := KendallTau(a, []int{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := KendallTau([]int{0, 9}, []int{0, 1}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if tau, _ := KendallTau([]int{0}, []int{0}); tau != 1 {
		t.Error("singleton tau should be 1")
	}
}

// TestQuickKendallTauMatchesBruteForce validates the O(n log n) inversion
// counter against the O(n²) definition.
func TestQuickKendallTauMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := rng.Perm(n)
		b := rng.Perm(n)
		got, err := KendallTau(a, b)
		if err != nil {
			return false
		}
		pa, pb := Positions(a), Positions(b)
		concordant, discordant := 0, 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				da := pa[i] - pa[j]
				db := pb[i] - pb[j]
				if da*db > 0 {
					concordant++
				} else {
					discordant++
				}
			}
		}
		want := float64(concordant-discordant) / float64(concordant+discordant)
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanRho(t *testing.T) {
	a := []int{0, 1, 2, 3, 4}
	rev := []int{4, 3, 2, 1, 0}
	if rho, err := SpearmanRho(a, a); err != nil || rho != 1 {
		t.Errorf("identical rho = %v, %v", rho, err)
	}
	if rho, err := SpearmanRho(a, rev); err != nil || rho != -1 {
		t.Errorf("reversed rho = %v, %v", rho, err)
	}
	if _, err := SpearmanRho(a, []int{0}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestNDCG(t *testing.T) {
	rel := []float64{3, 2, 1, 0}
	ideal := []int{0, 1, 2, 3}
	if v, err := NDCG(rel, ideal, 4); err != nil || math.Abs(v-1) > 1e-12 {
		t.Errorf("ideal NDCG = %v, %v", v, err)
	}
	worst := []int{3, 2, 1, 0}
	v, err := NDCG(rel, worst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 1 || v <= 0 {
		t.Errorf("worst-order NDCG = %v, want in (0,1)", v)
	}
	if z, err := NDCG([]float64{0, 0}, []int{1, 0}, 2); err != nil || z != 1 {
		t.Errorf("zero-relevance NDCG = %v, %v", z, err)
	}
	if _, err := NDCG(rel, ideal, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NDCG(rel, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NDCG(rel, []int{0, 1, 2, 9}, 4); err == nil {
		t.Error("out-of-range index should fail")
	}
}

// TestQuickNDCGMonotoneUnderImprovement: swapping a better item earlier
// never lowers NDCG.
func TestQuickNDCGBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		rel := make([]float64, n)
		for i := range rel {
			rel[i] = float64(rng.Intn(4))
		}
		ranking := rng.Perm(n)
		k := 1 + rng.Intn(n)
		v, err := NDCG(rel, ranking, k)
		if err != nil {
			return false
		}
		return v >= -1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
