package core

import (
	"sync"

	"rankfair/internal/pattern"
)

// The breadth-first ITERTD baselines keep every frontier entry's match
// set alive from production (the parent's expansion) until consumption
// (the entry's own head-of-queue visit). That lifetime is FIFO-shaped —
// entries are consumed in exactly the order they were produced — which a
// per-node heap allocation cannot exploit: the old appendChildren path
// allocated a fresh flat block, offset table and pattern per child and
// left the reclamation to the garbage collector. This file replaces it
// with a ring arena keyed on queue consumption: child match sets are
// carved out of sequence-numbered blocks, and consuming an entry frees
// every block older than the entry's production batch back onto a
// freelist. A steady-state search — and, through pooling, a whole per-k
// staircase of searches — recycles a handful of blocks regardless of how
// wide the frontier gets.

// bfsUnit is one frontier entry of the breadth-first baselines. The
// pattern is carried in factored form — the parent's materialized pattern
// plus the (attribute, value) pair this child binds — and only assembled
// by pat() for entries the search actually reports or expands: children
// pruned by the size threshold never build a Pattern at all, which on
// wide lattices is the majority of the queue.
type bfsUnit struct {
	pp   pattern.Pattern
	a, v int32
	m    matchSet
	// freeSeq is the ring sequence recorded when this entry's batch was
	// produced: every ring block with a smaller sequence holds match sets
	// of entries that precede this one in the queue, so once this entry is
	// consumed those blocks are dead and pop reclaims them.
	freeSeq int64
}

// pat materializes the entry's pattern out of the traversal's pattern
// arena. Search-tree children always bind an attribute past the parent's
// maximum, so the entry's own a doubles as its MaxAttrIdx.
func (q *bfs) pat(u *bfsUnit) pattern.Pattern { return q.pats.with(u.pp, int(u.a), u.v) }

// patChunk is the pattern arena's chunk size in elements.
const patChunk = 4096

// patArena bump-allocates the materialized patterns of one traversal.
// Unlike the ring, carves are never reclaimed mid-search: materialized
// patterns escape into results and child entries alias them as deferred
// prefixes, so the arena only ever appends and the whole buffer is
// dropped — not pooled — when the traversal closes.
type patArena struct {
	buf []int32
}

// with carves a copy of p with attr bound to v.
func (a *patArena) with(p pattern.Pattern, attr int, v int32) pattern.Pattern {
	n := len(p)
	if len(a.buf)+n > cap(a.buf) {
		sz := patChunk
		if n > sz {
			sz = n
		}
		a.buf = make([]int32, 0, sz)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	out := a.buf[off : off+n : off+n]
	copy(out, p)
	out[attr] = v
	return pattern.Pattern(out)
}

// bfsBlock is the standard ring block size in elements; larger single
// carves get a dedicated jumbo block that is dropped rather than pooled
// on release, so one huge root partition cannot pin its footprint for the
// rest of the sweep.
const bfsBlock = 1 << 14

// bfsRing is the FIFO block arena. Blocks carry absolute sequence
// numbers (the first block opened is 1, so sequence 0 doubles as the
// "nothing to free" sentinel); releases arrive in consumption order with
// non-decreasing sequences and free a prefix of the live block list.
type bfsRing struct {
	// blocks holds the live blocks oldest-first; blocks[i] has sequence
	// allocSeq - len(blocks) + 1 + i.
	blocks   [][]int32
	allocSeq int64     // sequence of the newest block; 0 before the first open
	off      int       // next free offset in the newest block
	free     [][]int32 // reclaimed standard-size blocks
}

// alloc carves an n-element slice out of the newest block, opening a new
// block (freelist first) when it does not fit.
func (r *bfsRing) alloc(n int) []int32 {
	if n == 0 {
		return nil
	}
	if m := len(r.blocks); m > 0 {
		if b := r.blocks[m-1]; r.off+n <= len(b) {
			out := b[r.off : r.off+n : r.off+n]
			r.off += n
			return out
		}
	}
	var b []int32
	switch {
	case n > bfsBlock:
		b = make([]int32, n)
	case len(r.free) > 0:
		b = r.free[len(r.free)-1]
		r.free[len(r.free)-1] = nil
		r.free = r.free[:len(r.free)-1]
	default:
		b = make([]int32, bfsBlock)
	}
	r.blocks = append(r.blocks, b)
	r.allocSeq++
	r.off = n
	return b[:n:n]
}

// release reclaims every block with sequence < seq. The newest block is
// never in the prefix: entries record a batch sequence no larger than the
// then-newest block's, and allocSeq only grows afterwards.
func (r *bfsRing) release(seq int64) {
	headSeq := r.allocSeq - int64(len(r.blocks)) + 1
	drop := int(seq - headSeq)
	if drop <= 0 {
		return
	}
	for i := 0; i < drop; i++ {
		if b := r.blocks[i]; len(b) == bfsBlock {
			r.free = append(r.free, b)
		}
		r.blocks[i] = nil
	}
	r.blocks = r.blocks[:copy(r.blocks, r.blocks[drop:])]
}

// reset moves every live block to the freelist, readying the ring for the
// next search.
func (r *bfsRing) reset() {
	for i, b := range r.blocks {
		if len(b) == bfsBlock {
			r.free = append(r.free, b)
		}
		r.blocks[i] = nil
	}
	r.blocks = r.blocks[:0]
	r.allocSeq = 0
	r.off = 0
}

// bfs is one breadth-first traversal's state: the FIFO frontier, the ring
// arena backing its match sets, and counting-sort scratch. Instances are
// pooled; the per-k baselines acquire one per search, so a staircase
// sweep reuses the same blocks, queue array and scratch for every k.
type bfs struct {
	eng   *engine
	queue []bfsUnit
	head  int
	ring  bfsRing
	pats  patArena
	// Counting-sort scratch: counts and cursors for the all-rows partition
	// and (lists engine) the top-k partition.
	cntA, curA []int32
	cntT, curT []int32
}

var bfsPool = sync.Pool{New: func() any { return new(bfs) }}

// newBFS acquires a pooled traversal and seeds the root frontier — the
// search-tree children of the empty pattern, in the same (attribute,
// value) order as rootUnits. The rank-space engine aliases posting lists
// (no ring traffic at all); the lists engine aliases the cached
// k-independent row partition and ring-allocates only the per-k top-k
// buckets. Root entries carry freeSeq 0: nothing precedes them.
func (e *engine) newBFS(k int) *bfs {
	q := bfsPool.Get().(*bfs)
	q.eng = e
	space := e.in.Space
	n := space.NumAttrs()
	empty := pattern.Empty(n)
	if e.ix != nil {
		for a := 0; a < n; a++ {
			for v := 0; v < space.Cards[a]; v++ {
				q.queue = append(q.queue, bfsUnit{pp: empty, a: int32(a), v: int32(v),
					m: matchSet{all: e.ix.Postings(a, int32(v))}})
			}
		}
		return q
	}
	e.ensureRootAll()
	if k > len(e.in.Ranking) {
		k = len(e.in.Ranking)
	}
	top := q.ring.alloc(k)
	for i := 0; i < k; i++ {
		top[i] = int32(e.in.Ranking[i])
	}
	rows := e.in.Rows
	for a := 0; a < n; a++ {
		card := space.Cards[a]
		counts := countBuf(&q.cntT, card)
		for _, ri := range top {
			counts[rows[ri][a]]++
		}
		flat := q.ring.alloc(len(top))
		cur := cursorBuf(&q.curT, card)
		off := int32(0)
		for v := 0; v < card; v++ {
			cur[v] = off
			off += counts[v]
		}
		for _, ri := range top {
			v := rows[ri][a]
			flat[cur[v]] = ri
			cur[v]++
		}
		for v := 0; v < card; v++ {
			end := cur[v]
			q.queue = append(q.queue, bfsUnit{pp: empty, a: int32(a), v: int32(v),
				m: matchSet{all: e.rootAll[a][v], top: flat[end-counts[v] : end : end]}})
		}
	}
	return q
}

// more reports whether frontier entries remain.
func (q *bfs) more() bool { return q.head < len(q.queue) }

// pop consumes the next frontier entry, reclaiming the ring prefix its
// batch sequence frees and compacting the queue's consumed head so a
// draining frontier releases its slots (amortized O(1) per entry).
func (q *bfs) pop() bfsUnit {
	u := q.queue[q.head]
	q.queue[q.head] = bfsUnit{}
	q.head++
	if q.head == len(q.queue) {
		q.queue = q.queue[:0]
		q.head = 0
	} else if q.head >= 1024 && q.head*2 >= len(q.queue) {
		n := copy(q.queue, q.queue[q.head:])
		tail := q.queue[n:]
		for i := range tail {
			tail[i] = bfsUnit{}
		}
		q.queue = q.queue[:n]
		q.head = 0
	}
	q.ring.release(u.freeSeq)
	return u
}

// expand enqueues u's search-tree children (Definition 4.1), partitioning
// the parent's match set per attribute directly into the ring. p is u's
// materialized pattern; children carry it as their deferred-pattern
// prefix. All children of one parent share one batch sequence — the
// newest block's sequence before the expansion's first carve — so
// consuming any of them frees exactly the blocks written before this
// parent came off the queue.
func (q *bfs) expand(u *bfsUnit, p pattern.Pattern) {
	e := q.eng
	space := e.in.Space
	n := space.NumAttrs()
	batch := q.ring.allocSeq
	for a := int(u.a) + 1; a < n; a++ {
		card := space.Cards[a]
		cntA := countBuf(&q.cntA, card)
		if e.ix != nil {
			rowAt := e.rowAt
			for _, r := range u.m.all {
				cntA[rowAt[r][a]]++
			}
			flat := q.ring.alloc(len(u.m.all))
			cur := cursorBuf(&q.curA, card)
			off := int32(0)
			for v := 0; v < card; v++ {
				cur[v] = off
				off += cntA[v]
			}
			for _, r := range u.m.all {
				v := rowAt[r][a]
				flat[cur[v]] = r
				cur[v]++
			}
			for v := 0; v < card; v++ {
				end := cur[v]
				q.queue = append(q.queue, bfsUnit{pp: p, a: int32(a), v: int32(v),
					m: matchSet{all: flat[end-cntA[v] : end : end]}, freeSeq: batch})
			}
			continue
		}
		rows := e.in.Rows
		for _, ri := range u.m.all {
			cntA[rows[ri][a]]++
		}
		allFlat := q.ring.alloc(len(u.m.all))
		curA := cursorBuf(&q.curA, card)
		off := int32(0)
		for v := 0; v < card; v++ {
			curA[v] = off
			off += cntA[v]
		}
		for _, ri := range u.m.all {
			v := rows[ri][a]
			allFlat[curA[v]] = ri
			curA[v]++
		}
		cntT := countBuf(&q.cntT, card)
		for _, ri := range u.m.top {
			cntT[rows[ri][a]]++
		}
		topFlat := q.ring.alloc(len(u.m.top))
		curT := cursorBuf(&q.curT, card)
		off = 0
		for v := 0; v < card; v++ {
			curT[v] = off
			off += cntT[v]
		}
		for _, ri := range u.m.top {
			v := rows[ri][a]
			topFlat[curT[v]] = ri
			curT[v]++
		}
		for v := 0; v < card; v++ {
			endA, endT := curA[v], curT[v]
			q.queue = append(q.queue, bfsUnit{pp: p, a: int32(a), v: int32(v),
				m:       matchSet{all: allFlat[endA-cntA[v] : endA : endA], top: topFlat[endT-cntT[v] : endT : endT]},
				freeSeq: batch})
		}
	}
}

// close returns the traversal to the pool: leftover entries of a canceled
// search are cleared and the ring's blocks move to its freelist, so the
// next search starts warm.
func (q *bfs) close() {
	for i := q.head; i < len(q.queue); i++ {
		q.queue[i] = bfsUnit{}
	}
	q.queue = q.queue[:0]
	q.head = 0
	q.ring.reset()
	q.pats = patArena{}
	q.eng = nil
	bfsPool.Put(q)
}

// countBuf returns a zeroed width-card counting buffer backed by *buf,
// growing it as needed.
func countBuf(buf *[]int32, card int) []int32 {
	b := *buf
	if cap(b) < card {
		b = make([]int32, card)
		*buf = b
	}
	b = b[:card]
	for i := range b {
		b[i] = 0
	}
	return b
}

// cursorBuf returns an uninitialized width-card cursor buffer backed by
// *buf.
func cursorBuf(buf *[]int32, card int) []int32 {
	b := *buf
	if cap(b) < card {
		b = make([]int32, card)
		*buf = b
	}
	return b[:card]
}
