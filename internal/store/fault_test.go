package store

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"rankfair/internal/fault"
)

func seedBytes(i int) []byte {
	return []byte(fmt.Sprintf("sex,score\nM,%d\nF,%d\n", 100+i, 90+i))
}

// openFault opens a store whose disk access runs through a fault
// injector, returning both.
func openFault(t *testing.T, dir string) (*Store, *fault.Injector) {
	t.Helper()
	inj := fault.NewInjector(1)
	s, err := OpenFS(dir, fault.NewFaultFS(fault.OS{}, inj))
	if err != nil {
		t.Fatal(err)
	}
	return s, inj
}

func TestFaultBlobWriteFailureIsIOError(t *testing.T) {
	s, inj := openFault(t, t.TempDir())
	defer s.Close()
	inj.Add(fault.Rule{Op: "write", Path: "blobs", Count: 1, Err: syscall.ENOSPC})
	raw := seedBytes(0)
	err := s.PutSeed("ds-a", HashBytes(raw), raw, nil)
	if err == nil {
		t.Fatal("PutSeed succeeded under injected ENOSPC")
	}
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("blob write failure %T is not *IOError", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error %v does not unwrap to ENOSPC", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed seed left a chain behind")
	}
	// The rule is exhausted: the retry must succeed and be fully servable.
	if err := s.PutSeed("ds-a", HashBytes(raw), raw, nil); err != nil {
		t.Fatalf("retry after exhausted fault failed: %v", err)
	}
	if got, err := s.Blob(HashBytes(raw)); err != nil || string(got) != string(raw) {
		t.Fatalf("blob after retry = %q, %v", got, err)
	}
}

func TestFaultLogicalErrorsAreNotIOErrors(t *testing.T) {
	s, _ := openFault(t, t.TempDir())
	defer s.Close()
	raw := seedBytes(0)
	if err := s.PutSeed("ds-a", HashBytes(raw), raw, nil); err != nil {
		t.Fatal(err)
	}
	batch := []byte("F,77\n")
	err := s.PutAppend("ds-a", "newhash", "wrong-parent", batch, nil)
	if err == nil {
		t.Fatal("append with wrong parent succeeded")
	}
	var ioe *IOError
	if errors.As(err, &ioe) {
		t.Fatalf("logical parent-mismatch rejection %v classified as IOError", err)
	}
}

// TestFaultTornWALWriteHealsTail is the acked-write-loss regression test:
// a torn manifest write must be truncated away immediately, so the *next*
// append lands on a clean tail and survives recovery. Without the heal,
// recovery would cut the manifest at the torn bytes and silently drop the
// later, acknowledged append.
func TestFaultTornWALWriteHealsTail(t *testing.T) {
	dir := t.TempDir()
	s, inj := openFault(t, dir)
	seed := seedBytes(0)
	if err := s.PutSeed("ds-a", HashBytes(seed), seed, nil); err != nil {
		t.Fatal(err)
	}
	// Tear the next manifest write 7 bytes in: the record fails (and is
	// reported failed to the caller), leaving garbage after the seed
	// record unless the store heals.
	inj.Add(fault.Rule{Op: "write", Path: "MANIFEST", Count: 1, Torn: 7, Err: syscall.EIO})
	batchA := []byte("F,77\n")
	hashA := HashBytes(append(append([]byte{}, seed...), batchA...))
	if err := s.PutAppend("ds-a", hashA, HashBytes(seed), batchA, nil); err == nil {
		t.Fatal("append under torn WAL write succeeded")
	}
	// The failed append must not have advanced the chain.
	gens, ok := s.Chain("ds-a")
	if !ok || len(gens) != 1 {
		t.Fatalf("chain after failed append has %d generations, want 1", len(gens))
	}
	// A second append (different batch) is acked on the healed tail.
	batchB := []byte("M,55\n")
	hashB := HashBytes(append(append([]byte{}, seed...), batchB...))
	if err := s.PutAppend("ds-a", hashB, HashBytes(seed), batchB, nil); err != nil {
		t.Fatalf("append after heal failed: %v", err)
	}

	// Simulate kill -9: reopen the directory without Close. The acked
	// append must survive; nothing about the torn write may.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gens, ok = r.Chain("ds-a")
	if !ok || len(gens) != 2 {
		t.Fatalf("recovered chain has %d generations, want 2 (seed + acked append)", len(gens))
	}
	if gens[1].Hash != hashB {
		t.Fatalf("recovered head %.12s, want the acked append %.12s", gens[1].Hash, hashB)
	}
	if st := r.Stats(); st.DroppedRecords != 0 {
		t.Fatalf("recovery dropped %d records from a healed manifest, want 0", st.DroppedRecords)
	}
}

// TestFaultWALHealRetriesWhenTruncateFails covers the dirty-tail path:
// if the post-tear truncate itself fails, the store must keep refusing
// appends (rather than writing after the tear) until a heal succeeds.
func TestFaultWALHealRetriesWhenTruncateFails(t *testing.T) {
	dir := t.TempDir()
	s, inj := openFault(t, dir)
	seed := seedBytes(0)
	if err := s.PutSeed("ds-a", HashBytes(seed), seed, nil); err != nil {
		t.Fatal(err)
	}
	inj.Add(fault.Rule{Op: "write", Path: "MANIFEST", Count: 1, Torn: 7, Err: syscall.EIO})
	inj.Add(fault.Rule{Op: "ftruncate", Path: "MANIFEST", Count: 1, Err: syscall.EIO})
	batchA := []byte("F,77\n")
	hashA := HashBytes(append(append([]byte{}, seed...), batchA...))
	if err := s.PutAppend("ds-a", hashA, HashBytes(seed), batchA, nil); err == nil {
		t.Fatal("append under torn WAL write succeeded")
	}
	// Both rules are spent: the next append heals the tail first, then
	// lands cleanly.
	batchB := []byte("M,55\n")
	hashB := HashBytes(append(append([]byte{}, seed...), batchB...))
	if err := s.PutAppend("ds-a", hashB, HashBytes(seed), batchB, nil); err != nil {
		t.Fatalf("append after deferred heal failed: %v", err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if gens, _ := r.Chain("ds-a"); len(gens) != 2 || gens[1].Hash != hashB {
		t.Fatalf("recovered chain %+v, want seed + %.12s", gens, hashB)
	}
}

// TestFaultTornWALWriteWithoutLaterAppend is the plain crash shape: the
// torn record is the last thing on disk (heal also failed), and recovery
// truncates it as a torn tail, keeping the longest consistent prefix.
func TestFaultTornWALWriteWithoutLaterAppend(t *testing.T) {
	dir := t.TempDir()
	s, inj := openFault(t, dir)
	seed := seedBytes(0)
	if err := s.PutSeed("ds-a", HashBytes(seed), seed, nil); err != nil {
		t.Fatal(err)
	}
	// Tear the write AND the heal: disk is left with a genuinely torn tail.
	inj.Add(fault.Rule{Op: "write", Path: "MANIFEST", Count: 1, Torn: 7, Err: syscall.EIO})
	inj.Add(fault.Rule{Op: "ftruncate", Path: "MANIFEST", Err: syscall.EIO})
	batchA := []byte("F,77\n")
	hashA := HashBytes(append(append([]byte{}, seed...), batchA...))
	if err := s.PutAppend("ds-a", hashA, HashBytes(seed), batchA, nil); err == nil {
		t.Fatal("append under torn WAL write succeeded")
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gens, ok := r.Chain("ds-a")
	if !ok || len(gens) != 1 || gens[0].Hash != HashBytes(seed) {
		t.Fatalf("recovered chain %+v, want just the seed", gens)
	}
	if st := r.Stats(); st.DroppedRecords == 0 {
		t.Fatal("recovery of a torn tail reported no dropped records")
	}
	// And the recovered store accepts appends on the surviving head.
	batchB := []byte("M,55\n")
	hashB := HashBytes(append(append([]byte{}, seed...), batchB...))
	if err := r.PutAppend("ds-a", hashB, HashBytes(seed), batchB, nil); err != nil {
		t.Fatalf("append on recovered store failed: %v", err)
	}
}

func TestFaultTransientReadErrorMark(t *testing.T) {
	s, inj := openFault(t, t.TempDir())
	defer s.Close()
	raw := seedBytes(0)
	if err := s.PutSeed("ds-a", HashBytes(raw), raw, nil); err != nil {
		t.Fatal(err)
	}
	inj.Add(fault.Rule{Op: "readfile", Path: "blobs", Count: 1, Err: syscall.EAGAIN, Transient: true})
	_, err := s.Blob(HashBytes(raw))
	if err == nil {
		t.Fatal("blob read under injected EAGAIN succeeded")
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("injected transient read error lost its mark through the store: %v", err)
	}
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("read failure %T is not *IOError", err)
	}
	if got, rerr := s.Blob(HashBytes(raw)); rerr != nil || string(got) != string(raw) {
		t.Fatalf("retry read = %q, %v", got, rerr)
	}
}
