package service

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"rankfair"
	"rankfair/internal/dataset"
	"rankfair/internal/stream"
)

// AppendResponse is the POST /v1/datasets/{id}/rows response: the advanced
// generation plus what the append actually did.
type AppendResponse struct {
	// Dataset is the new generation's record (bumped Version, chained
	// Hash/Parent, updated row and byte counts).
	Dataset DatasetInfo `json:"dataset"`
	// Appended is the number of rows the batch added.
	Appended int `json:"appended"`
	// Mode reports the applied path: "incremental" (ranking merge-insert +
	// copy-on-write index maintenance) or "rebuild" (full re-decode).
	Mode string `json:"mode"`
	// PromotedAnalysts counts cached analysts warm-promoted to the new
	// generation instead of being invalidated.
	PromotedAnalysts int `json:"promoted_analysts"`
}

// AppendRows applies one row batch to a dataset, advancing it to a new
// content-hash-chained generation. contentType selects the batch decoding
// ("application/json" for JSON rows, anything else for headerless CSV
// rows); data is bounded upstream by MaxUploadBytes.
//
// The append is a transaction against the dataset's current generation:
// concurrent appends to one dataset serialize, while audits keep running
// against whichever generation they were admitted with — the old
// generation's table, analyst and counting index are never mutated
// (copy-on-write snapshot isolation). On success the caches are
// reconciled for the mutated dataset only: cached analysts whose rankers
// support incremental extension are warm-promoted under the new
// generation's keys, everything else under the old generation's key
// prefix is invalidated, and no other dataset's entries are touched.
//
// The new generation's raw form is the old CSV bytes plus the batch's
// canonical CSV rendering, so its content hash — and therefore every
// cache key — is exactly what a fresh upload of the concatenated CSV
// would produce: append-then-audit and fresh-upload-then-audit are
// byte-identical and even share cache entries.
func (s *Service) AppendRows(id, contentType string, data []byte) (*AppendResponse, error) {
	e, st, ok := s.registry.lockAppend(id)
	if !ok {
		// The dataset may be durable but not resident (restart, or paged
		// out by the registry LRU): page it in, then retry the lock once.
		if _, _, loaded := s.getDataset(id); !loaded {
			return nil, &NotFoundError{Resource: "dataset", ID: id}
		}
		if e, st, ok = s.registry.lockAppend(id); !ok {
			return nil, &NotFoundError{Resource: "dataset", ID: id}
		}
	}
	defer e.unlockAppend()

	t0 := time.Now()
	batch, err := parseBatch(contentType, data, st.table, st.opts.Comma)
	s.obs.decode.Observe(time.Since(t0).Seconds())
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	if batch.Rows() == 0 {
		return nil, &BadRequestError{Err: fmt.Errorf("service: empty batch")}
	}
	newRaw := stream.Concat(st.raw, batch.Raw)
	if int64(len(newRaw)) > s.cfg.MaxUploadBytes {
		return nil, &BadRequestError{Err: fmt.Errorf("service: appended dataset would be %d bytes, limit is %d", len(newRaw), s.cfg.MaxUploadBytes)}
	}

	// Pick the path: the cost model first, then structural constraints —
	// a batch that changes the decoded schema (new categorical label,
	// non-numeric value in a numeric column) can only be applied by
	// re-decoding the concatenated CSV, which handles the change exactly
	// as a fresh upload would.
	mode := stream.CostModel{RebuildFraction: s.cfg.StreamRebuildFraction}.Decide(st.info.Rows, batch.Rows())
	var newTable *rankfair.Dataset
	if mode == stream.ModeIncremental {
		newTable, err = st.table.AppendRows(batch.Records)
		if err != nil {
			if !errors.Is(err, dataset.ErrSchemaDrift) {
				return nil, &BadRequestError{Err: err}
			}
			mode = stream.ModeRebuild
		}
	}
	if mode == stream.ModeRebuild {
		newTable, err = rankfair.ReadCSV(bytes.NewReader(newRaw), st.opts)
		if err != nil {
			return nil, &BadRequestError{Err: fmt.Errorf("service: decoding appended CSV: %w", err)}
		}
		if err := newTable.Validate(); err != nil {
			return nil, &BadRequestError{Err: fmt.Errorf("service: invalid appended table: %w", err)}
		}
	}

	info := st.info
	info.Parent = info.Hash
	info.Hash = HashCSV(newRaw)
	info.Version++
	info.Rows = newTable.NumRows()
	info.Columns = newTable.NumCols()
	info.Attributes = newTable.CategoricalNames()
	info.Numeric = nil
	for _, c := range newTable.Columns() {
		if c.Kind == dataset.Numeric {
			info.Numeric = append(info.Numeric, c.Name)
		}
	}
	info.Bytes = int64(len(newRaw))

	// Durability before visibility — and before cache reconciliation: the
	// generation is persisted (batch blob + fsync'd manifest record,
	// under the store retry/breaker policy) before anything in memory
	// changes, so a failed persist rolls back to a fully consistent state
	// instead of having already invalidated valid cache entries. An
	// acknowledged append can never be lost to a crash. The store
	// validates the parent against its own head, so a tombstone that
	// raced this transaction loses the generation on disk exactly when
	// commitAppend would discard it in memory.
	if s.store != nil {
		perr := s.storeWrite("append", func() error {
			return s.store.PutAppend(id, info.Hash, st.info.Hash, batch.Raw, encodeMeta(info, st.opts))
		})
		if perr != nil {
			var ue *UnavailableError
			if !errors.As(perr, &ue) {
				if _, chained := s.store.Chain(id); !chained {
					return nil, &NotFoundError{Resource: "dataset", ID: id}
				}
			}
			return nil, storageErr(perr)
		}
	}

	// Reconcile the caches for this dataset only. Promotion happens
	// before invalidation so a promoted analyst's warm state derives from
	// the still-cached parent; in-flight builds are untouched either way
	// (they hold their own table references — snapshot isolation).
	promoted := 0
	if mode == stream.ModeIncremental && s.analysts != nil {
		for _, kv := range s.analysts.EntriesPrefix(analystKeyPrefix(st.info.Hash)) {
			entry, ok := kv.Val.(*analystEntry)
			if !ok {
				continue
			}
			if _, ok := entry.ranker.(rankfair.IncrementalRanker); !ok {
				continue
			}
			na, err := entry.analyst.Append(newTable, entry.ranker)
			if err != nil {
				continue // fall back to invalidation for this entry
			}
			rankerKey := strings.TrimPrefix(kv.Key, analystKeyPrefix(st.info.Hash))
			s.analysts.Put(analystKeyPrefix(info.Hash)+rankerKey, &analystEntry{analyst: na, ranker: entry.ranker})
			promoted++
		}
	}
	if s.analysts != nil {
		s.analysts.RemovePrefix(analystKeyPrefix(st.info.Hash))
	}
	s.cache.RemovePrefix(st.info.Hash + "|")

	if !s.registry.commitAppend(id, e, newTable, newRaw, info) {
		return nil, &NotFoundError{Resource: "dataset", ID: id}
	}

	s.metrics.streamAppends.Add(1)
	s.metrics.streamRows.Add(int64(batch.Rows()))
	if mode == stream.ModeIncremental {
		s.metrics.streamIncremental.Add(1)
	} else {
		s.metrics.streamRebuilds.Add(1)
	}
	s.metrics.streamPromoted.Add(int64(promoted))

	return &AppendResponse{
		Dataset:          info,
		Appended:         batch.Rows(),
		Mode:             string(mode),
		PromotedAnalysts: promoted,
	}, nil
}

// parseBatch dispatches on the request content type.
func parseBatch(contentType string, data []byte, t *rankfair.Dataset, comma rune) (*stream.Batch, error) {
	mt := contentType
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = mt[:i]
	}
	mt = strings.ToLower(strings.TrimSpace(mt))
	switch mt {
	case "application/json":
		return stream.ParseJSON(data, t, comma)
	case "", "text/csv", "application/csv", "application/octet-stream":
		return stream.ParseCSV(data, t, comma)
	default:
		return nil, fmt.Errorf("service: unsupported batch content type %q (want text/csv or application/json)", contentType)
	}
}
