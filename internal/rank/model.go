package rank

import (
	"errors"
	"fmt"

	"rankfair/internal/dataset"
)

// Scorer is anything that assigns a score to an encoded feature vector —
// satisfied by the regression models of internal/regress. It lets a learned
// model act as the black-box ranking algorithm R, the setting the paper's
// Section VI-C studies ("reveal the actual attributes used for ranking when
// the ranking algorithm is given as a black box").
type Scorer interface {
	Predict(x []float64) float64
}

// RowEncoder turns a categorical tuple into the Scorer's feature vector —
// satisfied by regress.Encoder.
type RowEncoder interface {
	Width() int
	Encode(row []int32, dst []float64)
}

// FromModel ranks tuples by a learned model's score over the table's
// categorical attributes. Descending scores by default; set Ascending for
// models that predict rank positions or risk (lower = better).
type FromModel struct {
	Model   Scorer
	Encoder RowEncoder
	// Ascending ranks smaller predictions first.
	Ascending bool
}

// Rank implements Ranker.
func (r *FromModel) Rank(t *dataset.Table) ([]int, error) {
	if r.Model == nil || r.Encoder == nil {
		return nil, errors.New("rank: FromModel needs a model and an encoder")
	}
	rows, names, _ := t.CatMatrix()
	if len(names) == 0 {
		return nil, errors.New("rank: table has no categorical attributes")
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("rank: table has no rows")
	}
	buf := make([]float64, r.Encoder.Width())
	scores := make([]float64, len(rows))
	for i, row := range rows {
		r.Encoder.Encode(row, buf)
		scores[i] = r.Model.Predict(buf)
		if r.Ascending {
			scores[i] = -scores[i]
		}
	}
	return ByScoresDesc(scores), nil
}
