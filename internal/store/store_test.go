package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedChain populates a store with one dataset: a seed and n append
// generations, returning the full raw content per generation.
func seedChain(t *testing.T, s *Store, id string, n int) (hashes []string, raws [][]byte) {
	t.Helper()
	raw := []byte("sex,score\nM,10\nF,9\n")
	hash := HashBytes(raw)
	meta, _ := json.Marshal(map[string]int{"version": 1})
	if err := s.PutSeed(id, hash, raw, meta); err != nil {
		t.Fatalf("PutSeed: %v", err)
	}
	hashes = append(hashes, hash)
	raws = append(raws, raw)
	for i := 0; i < n; i++ {
		batch := []byte(fmt.Sprintf("M,%d\nF,%d\n", 8-2*i, 7-2*i))
		next := append(append([]byte{}, raw...), batch...)
		nextHash := HashBytes(next)
		meta, _ := json.Marshal(map[string]int{"version": i + 2})
		if err := s.PutAppend(id, nextHash, hash, batch, meta); err != nil {
			t.Fatalf("PutAppend %d: %v", i, err)
		}
		raw, hash = next, nextHash
		hashes = append(hashes, hash)
		raws = append(raws, raw)
	}
	return hashes, raws
}

// replayRaw reconstructs a generation's full content from the chain.
func replayRaw(t *testing.T, s *Store, gens []Generation) []byte {
	t.Helper()
	var raw []byte
	for _, g := range gens {
		blob, err := s.Blob(g.Blob)
		if err != nil {
			t.Fatalf("Blob(%s): %v", g.Blob[:12], err)
		}
		raw = append(raw, blob...)
	}
	return raw
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes, raws := seedChain(t, s, "ds-a", 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	gens, ok := s2.Chain("ds-a")
	if !ok || len(gens) != 4 {
		t.Fatalf("recovered chain: ok=%v len=%d, want 4", ok, len(gens))
	}
	for i, g := range gens {
		if g.Hash != hashes[i] {
			t.Fatalf("gen %d hash = %.12s, want %.12s", i, g.Hash, hashes[i])
		}
	}
	if got := replayRaw(t, s2, gens); !bytes.Equal(got, raws[len(raws)-1]) {
		t.Fatalf("replayed content diverges from final generation:\n%s\nvs\n%s", got, raws[len(raws)-1])
	}
	// The chain stays appendable after recovery.
	head := hashes[len(hashes)-1]
	batch := []byte("M,0\nF,-1\n")
	nextHash := HashBytes(append(append([]byte{}, raws[len(raws)-1]...), batch...))
	if err := s2.PutAppend("ds-a", nextHash, head, batch, nil); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestStoreSeedIdempotentAndConflict(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	raw := []byte("a,b\n1,2\n")
	if err := s.PutSeed("ds-x", HashBytes(raw), raw, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSeed("ds-x", HashBytes(raw), raw, nil); err != nil {
		t.Fatalf("identical re-seed should be a durable no-op, got %v", err)
	}
	other := []byte("a,b\n3,4\n")
	if err := s.PutSeed("ds-x", HashBytes(other), other, nil); err == nil {
		t.Fatal("conflicting seed for a live chain must be rejected")
	}
}

func TestStoreAppendValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hashes, raws := seedChain(t, s, "ds-a", 1)
	// Wrong parent (stale head) is rejected.
	if err := s.PutAppend("ds-a", "deadbeef", hashes[0], []byte("x\n"), nil); err == nil {
		t.Fatal("append on a stale parent must be rejected")
	}
	// Re-persisting the durable head is a no-op (idempotent retry).
	batchAgain := raws[1][len(raws[0]):]
	if err := s.PutAppend("ds-a", hashes[1], hashes[0], batchAgain, nil); err != nil {
		t.Fatalf("idempotent head retry: %v", err)
	}
	// Unknown dataset.
	if err := s.PutAppend("ds-none", "h", "p", []byte("x\n"), nil); err == nil {
		t.Fatal("append to an unknown dataset must be rejected")
	}
}

func TestStoreTombstone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedChain(t, s, "ds-a", 2)
	if ok, err := s.Tombstone("ds-a"); err != nil || !ok {
		t.Fatalf("Tombstone: ok=%v err=%v", ok, err)
	}
	if ok, err := s.Tombstone("ds-a"); err != nil || ok {
		t.Fatalf("second Tombstone: ok=%v err=%v, want absent", ok, err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Chain("ds-a"); ok {
		t.Fatal("tombstoned chain resurrected on reboot")
	}
	// A fresh seed after a tombstone starts a new chain.
	raw := []byte("a\n1\n")
	if err := s2.PutSeed("ds-a", HashBytes(raw), raw, nil); err != nil {
		t.Fatalf("re-seed after tombstone: %v", err)
	}
}

func TestStoreCacheEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutCache("hash|cols:5:score:true;|m", []byte(`{"measure":"prop"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCache("hash|cols:5:score:true;|m", []byte(`{"measure":"prop"}`)); err != nil {
		t.Fatalf("idempotent cache put: %v", err)
	}
	if err := s.PutCache("other", []byte(`{"measure":"global"}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	keys := s2.CacheKeys()
	if len(keys) != 2 {
		t.Fatalf("recovered %d cache keys, want 2: %v", len(keys), keys)
	}
	val, err := s2.CacheValue("hash|cols:5:score:true;|m")
	if err != nil || string(val) != `{"measure":"prop"}` {
		t.Fatalf("CacheValue = %q, %v", val, err)
	}
}

// --- crash-boundary recovery -------------------------------------------

// TestRecoverTornManifestTail cuts the manifest mid-record (crash while
// appending the WAL line): reboot truncates the torn tail and keeps the
// consistent prefix, and the reopened WAL appends cleanly after it.
func TestRecoverTornManifestTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes, raws := seedChain(t, s, "ds-a", 2)
	s.Close()

	manifest := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the last record's JSON.
	lines := bytes.SplitAfter(raw, []byte("\n"))
	last := lines[len(lines)-2] // final element is the empty split tail
	torn := raw[:len(raw)-len(last)+len(last)/2]
	if err := os.WriteFile(manifest, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	gens, ok := s2.Chain("ds-a")
	if !ok || len(gens) != 2 {
		t.Fatalf("after torn tail: ok=%v len=%d, want the 2-generation prefix", ok, len(gens))
	}
	if got := replayRaw(t, s2, gens); !bytes.Equal(got, raws[1]) {
		t.Fatal("recovered prefix content diverges")
	}
	// Appending on the recovered head works (the file was truncated, so
	// the new record does not collide with torn bytes).
	batch := []byte("Q,1\n")
	next := HashBytes(append(append([]byte{}, raws[1]...), batch...))
	if err := s2.PutAppend("ds-a", next, hashes[1], batch, nil); err != nil {
		t.Fatalf("append after tail truncation: %v", err)
	}
}

// TestRecoverManifestAheadOfBlob deletes a batch blob (crash window where
// the WAL record became durable but the blob rename did not): reboot
// drops that generation and everything chained after it.
func TestRecoverManifestAheadOfBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, raws := seedChain(t, s, "ds-a", 3)
	gens, _ := s.Chain("ds-a")
	s.Close()

	// Remove the v3 step blob: v3 AND v4 must vanish, v1..v2 survive.
	if err := os.Remove(filepath.Join(dir, blobDirName, gens[2].Blob[:2], gens[2].Blob)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Chain("ds-a")
	if !ok || len(got) != 2 {
		t.Fatalf("after missing blob: ok=%v len=%d, want the 2-generation prefix", ok, len(got))
	}
	if raw := replayRaw(t, s2, got); !bytes.Equal(raw, raws[1]) {
		t.Fatal("recovered prefix content diverges")
	}
	if st := s2.Stats(); st.DroppedRecords < 2 {
		t.Fatalf("DroppedRecords = %d, want >= 2 (the cut generation and its descendant)", st.DroppedRecords)
	}
}

// TestRecoverTornBlob truncates a batch blob to half its bytes (crash
// mid-blob-write that still renamed, or torn page): the size check at
// Open cuts the chain at the consistent prefix.
func TestRecoverTornBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, raws := seedChain(t, s, "ds-a", 2)
	gens, _ := s.Chain("ds-a")
	s.Close()

	path := filepath.Join(dir, blobDirName, gens[1].Blob[:2], gens[1].Blob)
	if err := os.Truncate(path, gens[1].Size/2); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Chain("ds-a")
	if !ok || len(got) != 1 {
		t.Fatalf("after torn blob: ok=%v len=%d, want the seed only", ok, len(got))
	}
	if raw := replayRaw(t, s2, got); !bytes.Equal(raw, raws[0]) {
		t.Fatal("recovered seed content diverges")
	}
}

// TestRecoverCorruptSameSizeBlob flips a byte without changing the size:
// Open cannot see it (stat-level check), but the read path's content
// verification refuses the blob, and Truncate lets the caller realign the
// catalog to what is servable.
func TestRecoverCorruptSameSizeBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes, _ := seedChain(t, s, "ds-a", 2)
	gens, _ := s.Chain("ds-a")
	s.Close()

	path := filepath.Join(dir, blobDirName, gens[2].Blob[:2], gens[2].Blob)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.Chain("ds-a")
	if len(got) != 3 {
		t.Fatalf("same-size corruption should pass the stat check, got chain of %d", len(got))
	}
	if _, err := s2.Blob(gens[2].Blob); err == nil {
		t.Fatal("Blob must reject content that does not hash to its name")
	}
	if !s2.Truncate("ds-a", hashes[1]) {
		t.Fatal("Truncate should cut the unreadable head")
	}
	if got, _ := s2.Chain("ds-a"); len(got) != 2 {
		t.Fatalf("after Truncate: chain of %d, want 2", len(got))
	}
}

// TestRecoverBlobAheadOfManifest simulates a crash after the blob rename
// but before the WAL append: the orphan blob is ignored at reboot, and a
// retry of the same append adopts it without rewriting.
func TestRecoverBlobAheadOfManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes, raws := seedChain(t, s, "ds-a", 1)
	// Write the orphan by hand, exactly as writeBlob would have left it.
	batch := []byte("Z,42\n")
	orphan := HashBytes(batch)
	dirp := filepath.Join(dir, blobDirName, orphan[:2])
	if err := os.MkdirAll(dirp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirp, orphan), batch, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	gens, _ := s2.Chain("ds-a")
	if len(gens) != 2 {
		t.Fatalf("orphan blob must not surface as a generation: chain of %d, want 2", len(gens))
	}
	// The retried append adopts the orphan: no new blob write happens.
	before := s2.Stats().BlobWrites
	next := HashBytes(append(append([]byte{}, raws[1]...), batch...))
	if err := s2.PutAppend("ds-a", next, hashes[1], batch, nil); err != nil {
		t.Fatalf("retried append: %v", err)
	}
	if after := s2.Stats().BlobWrites; after != before {
		t.Fatalf("retry rewrote the orphan blob: writes %d -> %d", before, after)
	}
}

// TestRecoverCorruptMidManifest poisons a record in the middle of the
// manifest: recovery conservatively stops at the corruption, keeping the
// prefix and truncating the rest.
func TestRecoverCorruptMidManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedChain(t, s, "ds-a", 3)
	s.Close()

	manifest := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	lines[1] = "{not json}\n" // poison the first append record
	if err := os.WriteFile(manifest, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	gens, ok := s2.Chain("ds-a")
	if !ok || len(gens) != 1 {
		t.Fatalf("after mid-manifest corruption: ok=%v len=%d, want the seed only", ok, len(gens))
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") must fail")
	}
}
