package pattern

// EnumerateAll calls fn for every non-empty pattern over the space, in
// search-tree preorder. It is intended for brute-force oracles in tests and
// for the worst-case analyses; the number of patterns is exponential in the
// number of attributes. fn returning false stops the enumeration early.
func EnumerateAll(space *Space, fn func(Pattern) bool) {
	var rec func(p Pattern) bool
	rec = func(p Pattern) bool {
		for _, c := range p.Children(space) {
			if !fn(c) {
				return false
			}
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(Empty(space.NumAttrs()))
}

// MostGeneral filters a set of patterns down to its most general members:
// those with no proper subset inside the set. The result preserves the
// input order of the survivors.
func MostGeneral(ps []Pattern) []Pattern {
	var out []Pattern
	for i, p := range ps {
		dominated := false
		for j, q := range ps {
			if i == j {
				continue
			}
			if q.ProperSubsetOf(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// MostSpecific filters a set of patterns down to its most specific members:
// those with no proper superset inside the set.
func MostSpecific(ps []Pattern) []Pattern {
	var out []Pattern
	for i, p := range ps {
		dominated := false
		for j, q := range ps {
			if i == j {
				continue
			}
			if p.ProperSubsetOf(q) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}
