package core

import "rankfair/internal/pattern"

// SearchStats records per-run observability counters of the lattice
// search: how much of the lattice was expanded versus pruned and by which
// rule, how often the rank-space engine's count-only and lazy-scatter
// shortcuts fired, which match-set strategy the cost model picked and how
// wide the fan-out ran. Unlike Stats — whose NodesExamined/FullSearches
// are part of the byte-identity contract across engines and worker counts
// — SearchStats is engine-dependent by design (posting-list intersections
// only exist on the rank-space engine) and lives in a separate Result
// field, excluded from every equivalence comparison.
//
// Accumulation is contention-free: every fan-out worker counts into its
// sink's local SearchStats (one plain increment behind a nil check, no
// atomics), merged into the run's totals at the existing deterministic
// sink-merge points. All counter sums are order-independent, so totals are
// identical for every worker count.
type SearchStats struct {
	// Strategy is the match-set engine the run used: "lists", "index" or
	// "bitmap".
	Strategy string
	// Workers is the fan-out width the run was clamped to.
	Workers int
	// NodesExpanded counts nodes whose children were generated (subtree
	// descents), including step-time resumptions of frontier nodes.
	NodesExpanded int64
	// PrunedSize counts nodes dropped by the size threshold τs.
	PrunedSize int64
	// PrunedBound counts subtree descents stopped by the bound test:
	// biased frontier nodes of the lower-bound searches, non-exceeding
	// substantial nodes of the upper-bound searches.
	PrunedBound int64
	// PrunedDominated counts dominated verdicts returned by the
	// domination filter (per normalization pass, so a node re-checked at
	// several k values counts each time).
	PrunedDominated int64
	// PostingIntersections counts pairwise posting-list intersections
	// performed by step-time re-materialization (rank-space engine only).
	PostingIntersections int64
	// CountOnlyPasses counts child-statistics computations served by
	// count-only tallies over the parent's rank list without
	// materializing any child list (rank-space engine only).
	CountOnlyPasses int64
	// LazyScatters counts the count-only passes that later had to
	// scatter the parent's rank list after all, because the search
	// descended into at least one child (rank-space engine only).
	LazyScatters int64
	// BitmapPasses counts the pairwise intersections carried by word-wise
	// bitmap AND + popcount; SlicePasses counts the ones carried by the
	// galloping posting-list merge. Together they partition
	// PostingIntersections, exposing what the per-node cost model picked.
	BitmapPasses int64
	SlicePasses  int64
	// FrontierByLevel[l] counts frontier admissions of patterns binding l
	// attributes: biased-pattern discoveries on the lower-bound searches,
	// candidate admissions on the upper-bound ones. Index 0 is unused
	// (the empty pattern is never a frontier member).
	FrontierByLevel []int64
}

// The increment helpers are nil-safe: a disabled run (Input.DisableStats)
// simply never allocates the struct, and every instrumentation site costs
// one predictable branch.

func (s *SearchStats) expanded() {
	if s != nil {
		s.NodesExpanded++
	}
}

func (s *SearchStats) prunedSize() {
	if s != nil {
		s.PrunedSize++
	}
}

func (s *SearchStats) prunedBound() {
	if s != nil {
		s.PrunedBound++
	}
}

func (s *SearchStats) addDominated(n int64) {
	if s != nil {
		s.PrunedDominated += n
	}
}

func (s *SearchStats) intersection() {
	if s != nil {
		s.PostingIntersections++
	}
}

func (s *SearchStats) countOnlyPass() {
	if s != nil {
		s.CountOnlyPasses++
	}
}

func (s *SearchStats) lazyScatter() {
	if s != nil {
		s.LazyScatters++
	}
}

func (s *SearchStats) bitmapPass() {
	if s != nil {
		s.BitmapPasses++
	}
}

func (s *SearchStats) slicePass() {
	if s != nil {
		s.SlicePasses++
	}
}

// frontier records a frontier admission at the pattern's lattice level.
// The NumAttrs scan runs only when stats are enabled.
func (s *SearchStats) frontier(p pattern.Pattern) {
	if s == nil {
		return
	}
	lvl := p.NumAttrs()
	for len(s.FrontierByLevel) <= lvl {
		s.FrontierByLevel = append(s.FrontierByLevel, 0)
	}
	s.FrontierByLevel[lvl]++
}

// merge folds a per-worker accumulator into the run totals. Nil receivers
// and nil arguments are no-ops, mirroring the increment helpers.
func (s *SearchStats) merge(o *SearchStats) {
	if s == nil || o == nil {
		return
	}
	s.NodesExpanded += o.NodesExpanded
	s.PrunedSize += o.PrunedSize
	s.PrunedBound += o.PrunedBound
	s.PrunedDominated += o.PrunedDominated
	s.PostingIntersections += o.PostingIntersections
	s.CountOnlyPasses += o.CountOnlyPasses
	s.LazyScatters += o.LazyScatters
	s.BitmapPasses += o.BitmapPasses
	s.SlicePasses += o.SlicePasses
	for len(s.FrontierByLevel) < len(o.FrontierByLevel) {
		s.FrontierByLevel = append(s.FrontierByLevel, 0)
	}
	for i, v := range o.FrontierByLevel {
		s.FrontierByLevel[i] += v
	}
}

// Clone returns a deep copy, so serialization layers can snapshot the
// stats without aliasing the run's slice.
func (s *SearchStats) Clone() *SearchStats {
	if s == nil {
		return nil
	}
	out := *s
	if s.FrontierByLevel != nil {
		out.FrontierByLevel = append([]int64(nil), s.FrontierByLevel...)
	}
	return &out
}
