package dataset

import (
	"strings"
	"testing"
)

func TestAddCategoricalSortedDict(t *testing.T) {
	tb := New()
	if err := tb.AddCategorical("color", []string{"red", "blue", "red", "green"}); err != nil {
		t.Fatal(err)
	}
	c := tb.ColumnByName("color")
	if c == nil || c.Kind != Categorical {
		t.Fatal("missing categorical column")
	}
	want := []string{"blue", "green", "red"}
	for i, w := range want {
		if c.Dict[i] != w {
			t.Errorf("dict[%d] = %q, want %q", i, c.Dict[i], w)
		}
	}
	if c.Cardinality() != 3 {
		t.Errorf("cardinality = %d", c.Cardinality())
	}
	if got := []int32{c.Codes[0], c.Codes[1], c.Codes[2], c.Codes[3]}; got[0] != 2 || got[1] != 0 || got[2] != 2 || got[3] != 1 {
		t.Errorf("codes = %v", got)
	}
	if c.Code("red") != 2 || c.Code("missing") != -1 {
		t.Error("Code lookup broken")
	}
	if c.Label(0) != "blue" || c.Label(99) != "?" || c.Label(-1) != "?" {
		t.Error("Label lookup broken")
	}
}

func TestAddColumnErrors(t *testing.T) {
	tb := New()
	if err := tb.AddCategorical("", []string{"x"}); err == nil {
		t.Error("empty name should fail")
	}
	if err := tb.AddCategorical("a", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddCategorical("a", []string{"x", "y"}); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := tb.AddNumeric("b", []float64{1}); err == nil {
		t.Error("row count mismatch should fail")
	}
	if err := tb.AddCategoricalCodes("c", []int32{0, 5}, []string{"only"}); err == nil {
		t.Error("out-of-range code should fail")
	}
}

func TestNumericColumnAndValue(t *testing.T) {
	tb := New()
	if err := tb.AddCategorical("g", []string{"F", "M"}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNumeric("score", []float64{1.5, 2}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if got := tb.Value(0, 0); got != "F" {
		t.Errorf("Value(0,0) = %q", got)
	}
	if got := tb.Value(0, 1); got != "1.5" {
		t.Errorf("Value(0,1) = %q", got)
	}
	if tb.ColumnByName("score").Cardinality() != 0 {
		t.Error("numeric cardinality should be 0")
	}
	if tb.ColumnIndex("score") != 1 || tb.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex broken")
	}
}

func TestCategoricalIndicesAndCatMatrix(t *testing.T) {
	tb := New()
	_ = tb.AddCategorical("a", []string{"x", "y", "x"})
	_ = tb.AddNumeric("n", []float64{1, 2, 3})
	_ = tb.AddCategorical("b", []string{"p", "p", "q"})
	idx := tb.CategoricalIndices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("CategoricalIndices = %v", idx)
	}
	names := tb.CategoricalNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("CategoricalNames = %v", names)
	}
	rows, mnames, cards := tb.CatMatrix()
	if len(rows) != 3 || len(mnames) != 2 || cards[0] != 2 || cards[1] != 2 {
		t.Fatalf("CatMatrix shape: rows=%d names=%v cards=%v", len(rows), mnames, cards)
	}
	if rows[2][0] != 0 || rows[2][1] != 1 { // ("x","q")
		t.Errorf("row 2 = %v", rows[2])
	}
}

func TestProject(t *testing.T) {
	tb := New()
	_ = tb.AddCategorical("a", []string{"x"})
	_ = tb.AddNumeric("n", []float64{1})
	p, err := tb.Project("n", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Column(0).Name != "n" || p.Column(1).Name != "a" {
		t.Error("projection order wrong")
	}
	if _, err := tb.Project("missing"); err == nil {
		t.Error("missing column should fail")
	}
}

func TestValidate(t *testing.T) {
	tb := New()
	_ = tb.AddCategorical("a", []string{"x", "y"})
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	tb.ColumnByName("a").Codes[1] = 99
	if err := tb.Validate(); err == nil {
		t.Error("corrupted code should fail validation")
	}
	tb2 := New()
	_ = tb2.AddNumeric("n", []float64{1, 2})
	tb2.ColumnByName("n").Floats = tb2.ColumnByName("n").Floats[:1]
	if err := tb2.Validate(); err == nil {
		t.Error("short column should fail validation")
	}
}

func TestReadCSVAutoDetect(t *testing.T) {
	csv := "name,age,city\nalice,30,ny\nbob,25,sf\n"
	tb, err := ReadCSV(strings.NewReader(csv), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.ColumnByName("age").Kind != Numeric {
		t.Error("age should auto-detect numeric")
	}
	if tb.ColumnByName("name").Kind != Categorical {
		t.Error("name should be categorical")
	}
	if tb.NumRows() != 2 {
		t.Errorf("rows = %d", tb.NumRows())
	}
}

func TestReadCSVForcedKinds(t *testing.T) {
	csv := "zip,score\n10001,5\n94103,7\n"
	tb, err := ReadCSV(strings.NewReader(csv), CSVOptions{CategoricalColumns: []string{"zip"}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.ColumnByName("zip").Kind != Categorical {
		t.Error("zip should be forced categorical")
	}
	tb2, err := ReadCSV(strings.NewReader(csv), CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb2.ColumnByName("score").Kind != Numeric {
		if tb2.ColumnByName("score").Kind != Categorical {
			t.Error("unexpected kind")
		}
	} else {
		t.Error("AllCategorical should disable detection")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), CSVOptions{}); err == nil {
		t.Error("ragged csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a\nx\n"), CSVOptions{NumericColumns: []string{"a"}}); err == nil {
		t.Error("forced numeric on non-numeric should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := New()
	_ = tb.AddCategorical("g", []string{"F", "M", "F"})
	_ = tb.AddNumeric("s", []float64{1.25, -3, 0})
	var sb strings.Builder
	if err := WriteCSV(&sb, tb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.NumCols() != 2 {
		t.Fatalf("round trip shape %dx%d", back.NumRows(), back.NumCols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if tb.Value(i, j) != back.Value(i, j) {
				t.Errorf("cell (%d,%d): %q != %q", i, j, tb.Value(i, j), back.Value(i, j))
			}
		}
	}
}

func TestBucketizeEqualWidth(t *testing.T) {
	tb := New()
	_ = tb.AddNumeric("age", []float64{0, 10, 20, 30, 40})
	if err := tb.Bucketize("age", "age_bin", 4, EqualWidth); err != nil {
		t.Fatal(err)
	}
	c := tb.ColumnByName("age_bin")
	if c == nil || c.Cardinality() != 4 {
		t.Fatalf("age_bin cardinality = %d", c.Cardinality())
	}
	// 0→bin0, 10→bin1, 20→bin2, 30→bin3, 40→bin3 (max closed).
	want := []int32{0, 1, 2, 3, 3}
	for i, w := range want {
		if c.Codes[i] != w {
			t.Errorf("row %d: bin %d, want %d", i, c.Codes[i], w)
		}
	}
}

func TestBucketizeQuantile(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i * i) // heavily skewed
	}
	tb := New()
	_ = tb.AddNumeric("v", vals)
	if err := tb.Bucketize("v", "v_bin", 4, Quantile); err != nil {
		t.Fatal(err)
	}
	c := tb.ColumnByName("v_bin")
	counts := make([]int, c.Cardinality())
	for _, code := range c.Codes {
		counts[code]++
	}
	for b, n := range counts {
		if n < 15 || n > 35 {
			t.Errorf("quantile bin %d holds %d of 100 values, want roughly 25", b, n)
		}
	}
}

func TestBucketizeErrors(t *testing.T) {
	tb := New()
	_ = tb.AddNumeric("v", []float64{1, 1, 1})
	_ = tb.AddCategorical("c", []string{"a", "b", "c"})
	if err := tb.Bucketize("v", "x", 1, EqualWidth); err == nil {
		t.Error("bins < 2 should fail")
	}
	if err := tb.Bucketize("missing", "x", 3, EqualWidth); err == nil {
		t.Error("missing column should fail")
	}
	if err := tb.Bucketize("c", "x", 3, EqualWidth); err == nil {
		t.Error("categorical source should fail")
	}
	if err := tb.Bucketize("v", "x", 3, EqualWidth); err == nil {
		t.Error("constant column should fail")
	}
}
