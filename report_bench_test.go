package rankfair

import (
	"encoding/json"
	"io"
	"sync"
	"testing"

	"rankfair/internal/synth"
)

// wideReport builds the wide-result serialization workload: a proportional
// audit over the german schema with a low size threshold and a wide k
// range, which yields result sets at hundreds of prefixes. This is the
// ROADMAP "sortPatterns + per-k InfoAt during report serialization" hot
// spot.
func wideReport(b *testing.B) *Report {
	b.Helper()
	bundle := synth.GermanCredit(1000, 3)
	in, err := bundle.InputAttrs(8)
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewFromInput(in, bundle.Table.CatDicts())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := a.DetectProportional(PropParams{MinSize: 10, KMin: 10, KMax: 300, Alpha: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// resetMaterialization drops the report's cached count vectors and the
// analyst's counting index, so an iteration pays the full indexed cost.
func resetMaterialization(rep *Report, dropIndex bool) {
	rep.matMu.Lock()
	rep.levels, rep.expWeights, rep.expPrefix = nil, nil, nil
	rep.matMu.Unlock()
	if dropIndex {
		rep.analyst.idxOnce = sync.Once{}
		rep.analyst.idx = nil
	}
}

// BenchmarkReportToJSON compares report serialization over the naive
// per-(group, k) dataset scans against the posting-list materializer.
//
//   - naive: the pre-index pipeline (kept behind Report.naiveCounts).
//   - indexed-cold: rebuilds the counting index and the per-group vectors
//     every iteration — the first serialization ever seen for a dataset.
//   - indexed: index warm on the analyst (the cached-Analyst serving
//     case), per-group vectors rebuilt — a fresh report on a known dataset.
//   - indexed-warm: everything cached — re-serializing an existing report.
func BenchmarkReportToJSON(b *testing.B) {
	rep := wideReport(b)
	b.Run("naive", func(b *testing.B) {
		rep.naiveCounts = true
		defer func() { rep.naiveCounts = false }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if out := rep.ToJSON(); len(out.Results) == 0 {
				b.Fatal("empty report")
			}
		}
	})
	b.Run("indexed-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resetMaterialization(rep, true)
			if out := rep.ToJSON(); len(out.Results) == 0 {
				b.Fatal("empty report")
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		rep.analyst.index()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resetMaterialization(rep, false)
			if out := rep.ToJSON(); len(out.Results) == 0 {
				b.Fatal("empty report")
			}
		}
	})
	b.Run("indexed-warm", func(b *testing.B) {
		rep.ToJSON() // materialize once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if out := rep.ToJSON(); len(out.Results) == 0 {
				b.Fatal("empty report")
			}
		}
	})
}

// BenchmarkReportWriteJSON isolates the encoding layer on a warm report:
// the reflective encoding/json encoder (the pre-PR WriteJSON) against the
// pooled-buffer streaming encoder, whose output is byte-identical
// (TestWriteJSONMatchesEncodingJSONOnRealReport).
func BenchmarkReportWriteJSON(b *testing.B) {
	rep := wideReport(b)
	rep.ToJSON() // materialize once
	b.Run("encoding-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc := json.NewEncoder(io.Discard)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep.ToJSON()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := rep.WriteJSON(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInfoAt isolates the per-k enrichment away from JSON encoding.
func BenchmarkInfoAt(b *testing.B) {
	rep := wideReport(b)
	b.Run("naive", func(b *testing.B) {
		rep.naiveCounts = true
		defer func() { rep.naiveCounts = false }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if infos := rep.InfoAt(150); len(infos) == 0 {
				b.Fatal("empty result set")
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		rep.ToJSON() // materialize once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if infos := rep.InfoAt(150); len(infos) == 0 {
				b.Fatal("empty result set")
			}
		}
	})
}
