package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"rankfair"
	"rankfair/internal/obs"
)

// JobStatus is the lifecycle state of an audit job.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// ErrQueueFull is returned by Submit when the job queue is at capacity;
// HTTP handlers map it to 503 so clients can back off.
var ErrQueueFull = errors.New("service: job queue full")

// JobFunc is one unit of audit work. It returns the serialized report and
// whether the result came from the cache (directly or by joining an
// in-flight duplicate) rather than a fresh computation.
type JobFunc func(ctx context.Context) (*rankfair.ReportJSON, bool, error)

// Job is the manager's record of one submitted audit.
type Job struct {
	ID      string
	Dataset string
	Params  rankfair.AuditParams

	status   JobStatus
	err      string
	errCode  string
	cacheHit bool
	report   *rankfair.ReportJSON

	// budget is the job's end-to-end time bound (queue wait + run);
	// zero means unbounded.
	budget time.Duration

	created  time.Time
	started  time.Time
	finished time.Time

	run      JobFunc
	runCtx   context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	doneOnce sync.Once
}

// finish closes the job's completion channel exactly once.
func (j *Job) finish() { j.doneOnce.Do(func() { close(j.done) }) }

// JobView is the JSON-safe snapshot of a job served by the audit API.
type JobView struct {
	ID      string               `json:"id"`
	Dataset string               `json:"dataset"`
	Params  rankfair.AuditParams `json:"params"`
	Status  JobStatus            `json:"status"`
	Error   string               `json:"error,omitempty"`
	// ErrorCode classifies a failed job beyond the message: "shed" (the
	// queue wait consumed the budget before the job ran) or
	// "deadline_exceeded" (the budget expired mid-run). Empty otherwise.
	ErrorCode string    `json:"error_code,omitempty"`
	CacheHit  bool      `json:"cache_hit"`
	Created   time.Time `json:"created"`
	// BudgetMS echoes the job's end-to-end time budget when one was set.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// ElapsedMS is the run time: queued jobs report 0, running jobs the
	// time since start, finished jobs the total duration.
	ElapsedMS float64 `json:"elapsed_ms"`
	// NodesExamined, FullSearches and TotalGroups surface the detection
	// work statistics once the job is done.
	NodesExamined int64 `json:"nodes_examined,omitempty"`
	FullSearches  int   `json:"full_searches,omitempty"`
	TotalGroups   int   `json:"total_groups,omitempty"`
}

// JobObserver is the manager's hook into the observability layer: queue
// and run latency histograms, the finished-trace ring, and structured
// logging with a slow-audit threshold. A nil observer (or any nil field)
// disables that part of the instrumentation.
type JobObserver struct {
	// QueueWait observes created→started, Run observes started→finished,
	// both in seconds.
	QueueWait *obs.Histogram
	Run       *obs.Histogram
	// Traces receives each finished job's span tree, keyed by job ID.
	Traces *obs.TraceStore
	// Logger logs job completion at debug level; jobs that ran longer than
	// SlowAudit (> 0) log at warn level with the full span tree attached.
	Logger    *slog.Logger
	SlowAudit time.Duration
}

// SetObserver installs the observer; call before the first Submit.
func (m *Manager) SetObserver(ob *JobObserver) {
	m.mu.Lock()
	m.observer = ob
	m.mu.Unlock()
}

// ManagerStats snapshots the job counters for /metrics.
type ManagerStats struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Shed and DeadlineExceeded break down Failed: jobs shed at dequeue
	// because their queue wait consumed the budget (or exceeded the
	// manager's CoDel-style bound), and jobs whose budget expired mid-run.
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Queued           int   `json:"queued"`
	Running          int   `json:"running"`
}

// Manager runs audit jobs on a fixed pool of workers over a bounded
// queue. Submission is non-blocking: a full queue rejects immediately
// rather than stalling the HTTP handler.
type Manager struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	seq     int64
	queue   chan *Job
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	submitted, completed, failed, canceled int64
	shed, deadlineExceeded                 int64
	running                                int
	retain                                 int
	clock                                  func() time.Time
	observer                               *JobObserver

	// queueBudget is the CoDel-style queue-wait bound for jobs without
	// their own budget: a job that waited longer than this is shed at
	// dequeue instead of run (running it would only add late work to an
	// already-behind queue). Zero disables the bound.
	queueBudget time.Duration

	// beforeRun, when set, runs on the worker goroutine after dequeue and
	// before the shed/deadline checks — a fault-injection seam chaos tests
	// use to add deterministic queue latency.
	beforeRun func()
}

// defaultJobRetention bounds how many job records the manager keeps; the
// oldest *finished* jobs are pruned beyond it so the daemon's memory does
// not grow with its lifetime.
const defaultJobRetention = 1024

// NewManager starts workers goroutines consuming a queue of queueDepth
// pending jobs (<= 0: 4 workers, depth 64).
func NewManager(workers, queueDepth int) *Manager {
	if workers <= 0 {
		workers = 4
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, queueDepth),
		baseCtx: ctx,
		stop:    cancel,
		retain:  defaultJobRetention,
		clock:   time.Now,
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// SetQueueWaitBudget installs the CoDel-style queue-wait bound for
// budget-less jobs; call before serving traffic.
func (m *Manager) SetQueueWaitBudget(d time.Duration) {
	m.mu.Lock()
	m.queueBudget = d
	m.mu.Unlock()
}

// SubmitOption tunes one submission.
type SubmitOption func(*submitSpec)

type submitSpec struct{ budget time.Duration }

// WithBudget bounds the job end to end: the deadline covers queue wait
// plus run, flows into the job context (and from there into the
// cancellable lattice search), and a job still queued when it expires is
// shed without running. Non-positive budgets are ignored.
func WithBudget(d time.Duration) SubmitOption {
	return func(s *submitSpec) { s.budget = d }
}

// Submit queues one job. It returns the job snapshot immediately; the
// work runs asynchronously on the pool.
func (m *Manager) Submit(dataset string, params rankfair.AuditParams, run JobFunc, opts ...SubmitOption) (JobView, error) {
	var spec submitSpec
	for _, o := range opts {
		o(&spec)
	}
	m.mu.Lock()
	created := m.clock()
	ctx, cancel := context.WithCancel(m.baseCtx)
	if spec.budget > 0 {
		dctx, dcancel := context.WithDeadline(ctx, created.Add(spec.budget))
		base := cancel
		ctx, cancel = dctx, func() { dcancel(); base() }
	}
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", m.seq),
		Dataset: dataset,
		Params:  params,
		status:  JobQueued,
		created: created,
		budget:  max(spec.budget, 0),
		run:     run,
		runCtx:  ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.submitted++
	view := m.viewLocked(j)
	m.mu.Unlock()

	select {
	case m.queue <- j:
		return view, nil
	default:
		m.mu.Lock()
		j.status = JobFailed
		j.err = ErrQueueFull.Error()
		m.submitted-- // never entered the queue
		delete(m.jobs, j.ID)
		m.mu.Unlock()
		cancel()
		return JobView{}, ErrQueueFull
	}
}

// worker drains the queue until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j := <-m.queue:
			m.execute(j)
		}
	}
}

// execute runs one job to completion.
func (m *Manager) execute(j *Job) {
	defer j.finish()
	ctx := j.runCtx
	m.mu.Lock()
	hook := m.beforeRun
	m.mu.Unlock()
	if hook != nil {
		hook()
	}
	m.mu.Lock()
	if j.status == JobCanceled || ctx.Err() != nil {
		switch {
		case j.status == JobCanceled:
			// Counted by Cancel already.
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			// The queue wait consumed the whole budget: shed without
			// running — late work would only push the queue further behind.
			j.status = JobFailed
			j.errCode = CodeShed
			j.err = fmt.Sprintf("shed before running: queue wait exceeded the %v budget", j.budget)
			m.shed++
			m.failed++
		default:
			j.status = JobCanceled
			m.canceled++
		}
		j.finished = m.clock()
		j.run = nil
		m.mu.Unlock()
		j.cancel()
		return
	}
	if wait := m.clock().Sub(j.created); m.queueBudget > 0 && j.budget == 0 && wait > m.queueBudget {
		// CoDel-style bound for budget-less jobs: a wait this long means
		// the queue is persistently behind, so shed rather than serve stale.
		j.status = JobFailed
		j.errCode = CodeShed
		j.err = fmt.Sprintf("shed before running: queue wait %v exceeded the %v bound", wait.Round(time.Millisecond), m.queueBudget)
		m.shed++
		m.failed++
		j.finished = m.clock()
		j.run = nil
		m.mu.Unlock()
		j.cancel()
		return
	}
	j.status = JobRunning
	j.started = m.clock()
	m.running++
	ob := m.observer
	m.mu.Unlock()

	// The trace roots at submission so the queue wait is visible in the
	// span tree; the run span rides into the job context, and the phases
	// the service opens below it (analyst → search → serialize) nest there.
	var tr *obs.Trace
	var runSpan *obs.Span
	if ob != nil {
		tr = obs.NewTrace(j.ID, "audit", j.created)
		tr.Root().ChildAt("queue", j.created, j.started)
		runSpan = tr.Root().StartChild("run")
		ctx = obs.ContextWithSpan(ctx, runSpan)
		if ob.QueueWait != nil {
			ob.QueueWait.Observe(j.started.Sub(j.created).Seconds())
		}
	}

	report, hit, err := j.run(ctx)

	finished := m.clock()
	if ob != nil {
		// Close out the trace before the job's terminal status becomes
		// visible, so a client that polls to completion and immediately
		// fetches /v1/audits/{id}/trace never races the ring insert.
		runSpan.FinishAt(finished)
		tr.Root().FinishAt(finished)
		if ob.Run != nil {
			ob.Run.Observe(finished.Sub(j.started).Seconds())
		}
		if ob.Traces != nil {
			ob.Traces.Put(tr)
		}
	}

	m.mu.Lock()
	m.running--
	j.finished = finished
	deadlined := errors.Is(ctx.Err(), context.DeadlineExceeded)
	switch {
	case ctx.Err() != nil && !(deadlined && err == nil && report != nil):
		// Canceled mid-run: the job context flows into the lattice search
		// (Analyst.DetectCtx), which aborts within a bounded number of
		// node expansions and returns a partial-work error; whatever the
		// run produced is discarded. A budget expiring is surfaced as a
		// typed deadline_exceeded failure carrying the partial-work error
		// (how many nodes the search examined before stopping); an
		// explicit cancel stays a canceled job. The one exception: a run
		// that *completed* just as its deadline fired still serves its
		// report — the result beat the check.
		if deadlined {
			j.status = JobFailed
			j.errCode = CodeDeadlineExceeded
			if err != nil {
				j.err = err.Error()
			} else {
				j.err = context.DeadlineExceeded.Error()
			}
			m.deadlineExceeded++
			m.failed++
		} else {
			j.status = JobCanceled
			m.canceled++
		}
	case err != nil:
		j.status = JobFailed
		j.err = err.Error()
		m.failed++
	default:
		j.status = JobDone
		j.report = report
		j.cacheHit = hit
		m.completed++
	}
	// Release what the job no longer needs: the run closure pins the
	// decoded table, and the uncalled cancel pins a child of baseCtx.
	// (Called after the ctx.Err() check above, which it would taint.)
	j.run = nil
	j.cancel()
	m.pruneLocked()
	status := j.status
	m.mu.Unlock()

	if ob == nil || ob.Logger == nil {
		return
	}
	elapsed := finished.Sub(j.started)
	elapsedMS := float64(elapsed) / float64(time.Millisecond)
	if ob.SlowAudit > 0 && elapsed >= ob.SlowAudit {
		// The span tree is marshaled into one attribute so a slow audit's
		// phase breakdown lands in the log stream even after the trace
		// ring evicts it.
		spans, _ := json.Marshal(tr.Tree())
		ob.Logger.Warn("slow audit",
			"job", j.ID, "dataset", j.Dataset, "status", string(status),
			"cache_hit", hit, "elapsed_ms", elapsedMS, "trace", string(spans))
		return
	}
	ob.Logger.Debug("audit finished",
		"job", j.ID, "dataset", j.Dataset, "status", string(status),
		"cache_hit", hit, "elapsed_ms", elapsedMS)
}

// pruneLocked drops the oldest finished jobs beyond the retention cap.
// Job IDs are zero-padded sequence numbers, so lexicographic order is
// submission order.
func (m *Manager) pruneLocked() {
	if len(m.jobs) <= m.retain {
		return
	}
	finished := make([]string, 0, len(m.jobs))
	for id, j := range m.jobs {
		switch j.status {
		case JobDone, JobFailed, JobCanceled:
			finished = append(finished, id)
		}
	}
	sort.Strings(finished)
	for _, id := range finished {
		if len(m.jobs) <= m.retain {
			break
		}
		delete(m.jobs, id)
	}
}

// Cancel cancels a queued or running job; it reports whether the job
// exists. A queued job never starts; a running job's context is canceled,
// which stops the in-core lattice search mid-traversal (within a bounded
// number of node expansions) and discards the partial result.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	canceledQueued := false
	if ok && j.status == JobQueued {
		j.status = JobCanceled
		j.finished = m.clock()
		m.canceled++
		canceledQueued = true
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel()
	if canceledQueued {
		j.finish()
	}
	return true
}

// Wait blocks until the job finishes (done, failed or canceled) or ctx
// expires, then returns the final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("service: no audit %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	view, _ := m.Get(id)
	return view, nil
}

// Get returns the snapshot of one job.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return m.viewLocked(j), true
}

// Report returns the finished report of a done job.
func (m *Manager) Report(id string) (*rankfair.ReportJSON, JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, JobView{}, false
	}
	return j.report, m.viewLocked(j), true
}

// List returns snapshots of every job, newest first.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.viewLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Stats snapshots the counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	queued := 0
	for _, j := range m.jobs {
		if j.status == JobQueued {
			queued++
		}
	}
	return ManagerStats{
		Submitted:        m.submitted,
		Completed:        m.completed,
		Failed:           m.failed,
		Canceled:         m.canceled,
		Shed:             m.shed,
		DeadlineExceeded: m.deadlineExceeded,
		Queued:           queued,
		Running:          m.running,
	}
}

// Shutdown cancels every outstanding job and waits for the workers to
// drain, or for ctx to expire. Jobs still waiting in the queue are
// marked canceled so concurrent Wait calls unblock.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.stop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		// Workers are gone; whatever is left in the queue will never
		// run. Cancel it so waiters see a terminal state.
		for {
			select {
			case j := <-m.queue:
				m.mu.Lock()
				if j.status == JobQueued {
					j.status = JobCanceled
					j.finished = m.clock()
					m.canceled++
				}
				m.mu.Unlock()
				j.finish()
			default:
				close(done)
				return
			}
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// viewLocked snapshots a job; callers hold m.mu.
func (m *Manager) viewLocked(j *Job) JobView {
	v := JobView{
		ID:        j.ID,
		Dataset:   j.Dataset,
		Params:    j.Params,
		Status:    j.status,
		Error:     j.err,
		ErrorCode: j.errCode,
		CacheHit:  j.cacheHit,
		Created:   j.created,
		BudgetMS:  j.budget.Milliseconds(),
	}
	switch j.status {
	case JobRunning:
		v.ElapsedMS = float64(m.clock().Sub(j.started)) / float64(time.Millisecond)
	case JobDone, JobFailed, JobCanceled:
		if !j.started.IsZero() {
			v.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if j.report != nil {
		v.NodesExamined = j.report.NodesExamined
		v.FullSearches = j.report.FullSearches
		for _, kg := range j.report.Results {
			v.TotalGroups += len(kg.Groups)
		}
	}
	return v
}
