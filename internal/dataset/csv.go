package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVOptions controls CSV decoding.
type CSVOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// NumericColumns forces the named columns to be parsed as numeric.
	// Columns not listed are auto-detected: a column whose every value
	// parses as a float is numeric unless AllCategorical is set.
	NumericColumns []string
	// CategoricalColumns forces the named columns to be categorical even
	// if every value parses as a float (e.g. zip codes).
	CategoricalColumns []string
	// AllCategorical disables numeric auto-detection entirely.
	AllCategorical bool
}

// ReadCSV decodes a header-first CSV stream into a Table.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = 0 // all records must match the header length
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has no header row")
	}
	header := records[0]
	body := records[1:]

	forceNum := make(map[string]bool, len(opts.NumericColumns))
	for _, n := range opts.NumericColumns {
		forceNum[n] = true
	}
	forceCat := make(map[string]bool, len(opts.CategoricalColumns))
	for _, n := range opts.CategoricalColumns {
		forceCat[n] = true
	}

	t := New()
	for j, name := range header {
		raw := make([]string, len(body))
		for i, rec := range body {
			raw[i] = rec[j]
		}
		numeric := false
		switch {
		case forceCat[name]:
			numeric = false
		case forceNum[name]:
			numeric = true
		case opts.AllCategorical:
			numeric = false
		default:
			numeric = len(raw) > 0
			for _, v := range raw {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					numeric = false
					break
				}
			}
		}
		if numeric {
			vals := make([]float64, len(raw))
			for i, v := range raw {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: column %q row %d: %w", name, i, err)
				}
				vals[i] = f
			}
			if err := t.AddNumeric(name, vals); err != nil {
				return nil, err
			}
		} else if err := t.AddCategorical(name, raw); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV encodes the table as CSV with a header row. Categorical columns
// are written as their string labels; numeric columns with strconv
// formatting ('g').
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.NumCols())
	for i, c := range t.Columns() {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns() {
			if c.Kind == Categorical {
				rec[j] = c.Label(c.Codes[i])
			} else {
				rec[j] = strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
