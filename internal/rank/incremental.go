package rank

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rankfair/internal/dataset"
)

// IncrementalRanker is implemented by rankers that can extend an existing
// ranking with appended tuples without re-ranking the whole table. The
// contract is exact, not approximate: RankAppend must return precisely the
// permutation Rank would return on the full table, or an error when that
// cannot be guaranteed — callers (the streaming append path) fall back to a
// full re-rank on error. The streaming subsystem's append-equals-reupload
// guarantee rests on this equality, which is why it is differential- and
// fuzz-tested rather than assumed.
type IncrementalRanker interface {
	Ranker
	// RankAppend returns Rank(t) given that the first len(oldRanking) rows
	// of t were previously ranked as oldRanking and the remaining rows are
	// newly appended. It must not mutate oldRanking.
	RankAppend(t *dataset.Table, oldRanking []int) ([]int, error)
}

// RankAppend implements IncrementalRanker for ByColumns. A ByColumns
// ranking is a stable lexicographic sort with final ties broken by
// ascending row index; appended rows carry the largest indices, so the full
// re-sort necessarily (a) preserves the relative order of previously
// ranked rows and (b) places each appended row after every equal-key
// existing row. Both properties together make the ranking reconstructible
// as a merge: binary-search each appended row's insertion point in the old
// ranking (strictly-after comparisons, so ties land behind), with equal
// appended rows ordered among themselves by row index. O((n + b·log n)
// comparisons instead of a full O(n·log n) re-sort.
func (r *ByColumns) RankAppend(t *dataset.Table, oldRanking []int) ([]int, error) {
	if len(r.Keys) == 0 {
		return nil, errors.New("rank: ByColumns needs at least one key")
	}
	n, total := len(oldRanking), t.NumRows()
	if n > total {
		return nil, fmt.Errorf("rank: old ranking has %d entries, table has %d rows", n, total)
	}
	cols := make([]*dataset.Column, len(r.Keys))
	for i, k := range r.Keys {
		c := t.ColumnByName(k.Column)
		if c == nil {
			return nil, fmt.Errorf("rank: no column %q", k.Column)
		}
		if c.Kind != dataset.Numeric {
			return nil, fmt.Errorf("rank: column %q is %s, want numeric", k.Column, c.Kind)
		}
		// NaN in a key column destroys the strict weak order the merge
		// rests on: NaN "ties" with everything under the comparator, so
		// the old ranking is not sorted with respect to before() and the
		// binary searches below would return arbitrary insertion points —
		// silently diverging from Rank. Refuse instead; callers fall back
		// to the full re-sort, which is equality-preserving by
		// construction whatever order it puts NaN rows in.
		for _, v := range c.Floats {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("rank: column %q contains NaN; incremental ranking would not match a full re-rank", k.Column)
			}
		}
		cols[i] = c
	}
	// before(a, b) is the strict lexicographic key order (ties excluded):
	// the comparator of Rank without its index tie-break.
	before := func(a, b int) bool {
		for i, k := range r.Keys {
			va, vb := cols[i].Floats[a], cols[i].Floats[b]
			if va == vb {
				continue
			}
			if k.Descending {
				return va > vb
			}
			return va < vb
		}
		return false
	}

	// Insertion position of each appended row: the first old rank whose row
	// sorts strictly after it. Equal keys leave the new row behind the old
	// one (the stable tie-break: new rows have larger indices).
	appended := make([]int, 0, total-n)
	for ri := n; ri < total; ri++ {
		appended = append(appended, ri)
	}
	pos := make([]int, len(appended))
	for i, ri := range appended {
		pos[i] = sort.Search(n, func(j int) bool { return before(ri, oldRanking[j]) })
	}
	// Appended rows are already in ascending index order, the tie-break for
	// equal keys and equal insertion points; a stable sort by insertion
	// point (then key order among different-keyed rows sharing a position)
	// yields their final relative order.
	order := make([]int, len(appended))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		if pos[order[x]] != pos[order[y]] {
			return pos[order[x]] < pos[order[y]]
		}
		return before(appended[order[x]], appended[order[y]])
	})

	out := make([]int, 0, total)
	c := 0
	for j := 0; j <= n; j++ {
		for c < len(order) && pos[order[c]] == j {
			out = append(out, appended[order[c]])
			c++
		}
		if j < n {
			out = append(out, oldRanking[j])
		}
	}
	return out, nil
}
