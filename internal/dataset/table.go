// Package dataset implements the relational substrate of the paper: an
// in-memory table with dictionary-encoded categorical columns and numeric
// columns, CSV encoding/decoding, and bucketization of continuous attributes
// into categorical ranges (Section II-A of the paper).
//
// Pattern search (internal/pattern, internal/core) operates only on the
// categorical columns of a Table; rankers (internal/rank) may read both
// categorical and numeric columns.
package dataset

import (
	"errors"
	"fmt"
	"sort"
)

// Kind distinguishes the two supported column types.
type Kind int

const (
	// Categorical columns hold dictionary-encoded string values and are
	// the attributes over which patterns are defined.
	Categorical Kind = iota
	// Numeric columns hold float64 values, usable by rankers and by
	// Bucketize to derive categorical views.
	Numeric
)

// String returns a human-readable column kind.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a single named column of a Table. Exactly one of the value
// slices is populated, according to Kind.
type Column struct {
	Name string
	Kind Kind

	// Codes holds the dictionary code of each row for Categorical columns.
	Codes []int32
	// Dict maps a code to its string label for Categorical columns.
	Dict []string

	// Floats holds the value of each row for Numeric columns.
	Floats []float64

	index map[string]int32 // label -> code, lazily built
}

// Cardinality returns the size of the active domain of a categorical
// column, and 0 for numeric columns.
func (c *Column) Cardinality() int {
	if c.Kind != Categorical {
		return 0
	}
	return len(c.Dict)
}

// Code returns the dictionary code for label, or -1 if the label does not
// occur in the column.
func (c *Column) Code(label string) int32 {
	if c.index == nil {
		c.index = make(map[string]int32, len(c.Dict))
		for i, s := range c.Dict {
			c.index[s] = int32(i)
		}
	}
	if code, ok := c.index[label]; ok {
		return code
	}
	return -1
}

// Label returns the string label of a dictionary code. It returns "?" for
// out-of-range codes.
func (c *Column) Label(code int32) string {
	if code < 0 || int(code) >= len(c.Dict) {
		return "?"
	}
	return c.Dict[code]
}

// Table is an immutable-by-convention in-memory relation. Columns are added
// at construction time; all columns must have the same number of rows.
type Table struct {
	cols   []*Column
	byName map[string]int
	rows   int
}

// New returns an empty table. Rows are implied by the first column added.
func New() *Table {
	return &Table{byName: make(map[string]int)}
}

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the number of columns in the table.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the table's columns in insertion order. The returned
// slice must not be modified.
func (t *Table) Columns() []*Column { return t.cols }

// Column returns the i-th column.
func (t *Table) Column(i int) *Column { return t.cols[i] }

// ColumnByName returns the column with the given name, or nil if absent.
func (t *Table) ColumnByName(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

func (t *Table) addColumn(c *Column, n int) error {
	if c.Name == "" {
		return errors.New("dataset: column name must not be empty")
	}
	if _, dup := t.byName[c.Name]; dup {
		return fmt.Errorf("dataset: duplicate column %q", c.Name)
	}
	if len(t.cols) == 0 {
		t.rows = n
	} else if n != t.rows {
		return fmt.Errorf("dataset: column %q has %d rows, table has %d", c.Name, n, t.rows)
	}
	t.byName[c.Name] = len(t.cols)
	t.cols = append(t.cols, c)
	return nil
}

// AddCategorical appends a categorical column built from raw string values.
// The dictionary is the sorted set of distinct values, so codes are stable
// across runs for the same data.
func (t *Table) AddCategorical(name string, values []string) error {
	distinct := make(map[string]struct{}, 16)
	for _, v := range values {
		distinct[v] = struct{}{}
	}
	dict := make([]string, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	code := make(map[string]int32, len(dict))
	for i, v := range dict {
		code[v] = int32(i)
	}
	codes := make([]int32, len(values))
	for i, v := range values {
		codes[i] = code[v]
	}
	return t.addColumn(&Column{Name: name, Kind: Categorical, Codes: codes, Dict: dict, index: code}, len(values))
}

// AddCategoricalCodes appends a categorical column from pre-encoded codes
// and an explicit dictionary. Every code must index into dict.
func (t *Table) AddCategoricalCodes(name string, codes []int32, dict []string) error {
	for i, c := range codes {
		if c < 0 || int(c) >= len(dict) {
			return fmt.Errorf("dataset: column %q row %d: code %d out of range [0,%d)", name, i, c, len(dict))
		}
	}
	cp := make([]int32, len(codes))
	copy(cp, codes)
	dc := make([]string, len(dict))
	copy(dc, dict)
	return t.addColumn(&Column{Name: name, Kind: Categorical, Codes: cp, Dict: dc}, len(codes))
}

// AddNumeric appends a numeric column.
func (t *Table) AddNumeric(name string, values []float64) error {
	cp := make([]float64, len(values))
	copy(cp, values)
	return t.addColumn(&Column{Name: name, Kind: Numeric, Floats: cp}, len(values))
}

// CategoricalIndices returns the positions of all categorical columns, in
// insertion order. These are the attributes available for pattern search.
func (t *Table) CategoricalIndices() []int {
	var idx []int
	for i, c := range t.cols {
		if c.Kind == Categorical {
			idx = append(idx, i)
		}
	}
	return idx
}

// CategoricalNames returns the names of all categorical columns.
func (t *Table) CategoricalNames() []string {
	var names []string
	for _, c := range t.cols {
		if c.Kind == Categorical {
			names = append(names, c.Name)
		}
	}
	return names
}

// Project returns a new table with only the named columns, in the given
// order. Column data is shared with the receiver.
func (t *Table) Project(names ...string) (*Table, error) {
	out := New()
	for _, n := range names {
		c := t.ColumnByName(n)
		if c == nil {
			return nil, fmt.Errorf("dataset: no column %q", n)
		}
		if err := out.addColumn(c, t.rows); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CatMatrix materializes the categorical part of the table in row-major
// form for the pattern-search algorithms. It returns the encoded rows, the
// attribute names, and the per-attribute cardinalities.
func (t *Table) CatMatrix() (rows [][]int32, names []string, cards []int) {
	catCols := t.CategoricalIndices()
	names = make([]string, len(catCols))
	cards = make([]int, len(catCols))
	for j, ci := range catCols {
		names[j] = t.cols[ci].Name
		cards[j] = t.cols[ci].Cardinality()
	}
	flat := make([]int32, t.rows*len(catCols))
	rows = make([][]int32, t.rows)
	for i := 0; i < t.rows; i++ {
		rows[i], flat = flat[:len(catCols):len(catCols)], flat[len(catCols):]
	}
	for j, ci := range catCols {
		codes := t.cols[ci].Codes
		for i := 0; i < t.rows; i++ {
			rows[i][j] = codes[i]
		}
	}
	return rows, names, cards
}

// CatDicts returns the value dictionaries of the categorical columns, in
// the same order as CatMatrix attributes. The returned slices are shared
// with the table and must not be modified.
func (t *Table) CatDicts() [][]string {
	var dicts [][]string
	for _, ci := range t.CategoricalIndices() {
		dicts = append(dicts, t.cols[ci].Dict)
	}
	return dicts
}

// Value renders the table cell at (row, col) as a string.
func (t *Table) Value(row, col int) string {
	c := t.cols[col]
	switch c.Kind {
	case Categorical:
		return c.Label(c.Codes[row])
	default:
		return fmt.Sprintf("%g", c.Floats[row])
	}
}

// Validate checks the internal consistency of the table: equal column
// lengths and in-range dictionary codes. It is intended for use after
// loading external data.
func (t *Table) Validate() error {
	for _, c := range t.cols {
		switch c.Kind {
		case Categorical:
			if len(c.Codes) != t.rows {
				return fmt.Errorf("dataset: column %q has %d rows, want %d", c.Name, len(c.Codes), t.rows)
			}
			for i, code := range c.Codes {
				if code < 0 || int(code) >= len(c.Dict) {
					return fmt.Errorf("dataset: column %q row %d: code %d out of range", c.Name, i, code)
				}
			}
		case Numeric:
			if len(c.Floats) != t.rows {
				return fmt.Errorf("dataset: column %q has %d rows, want %d", c.Name, len(c.Floats), t.rows)
			}
		default:
			return fmt.Errorf("dataset: column %q has invalid kind %d", c.Name, c.Kind)
		}
	}
	return nil
}
