package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"rankfair"
	"rankfair/internal/fault"
	"rankfair/internal/synth"
)

// chaosService builds a store-backed service whose disk access runs
// through a fault injector, plus short breaker settings so trips and
// recoveries happen on test timescales.
func chaosService(t *testing.T, dir string, cfg Config) (*Service, *fault.Injector) {
	t.Helper()
	inj := fault.NewInjector(1)
	cfg.DataDir = dir
	cfg.StoreFS = fault.NewFaultFS(fault.OS{}, inj)
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 100 * time.Millisecond
	}
	svc := mustNew(t, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, inj
}

func worstCaseCSV(t *testing.T, n int) []byte {
	t.Helper()
	var csv bytes.Buffer
	if err := rankfair.WriteCSV(&csv, synth.WorstCase(n).Table); err != nil {
		t.Fatal(err)
	}
	return csv.Bytes()
}

func worstCaseRequest(datasetID string, n int) AuditRequest {
	perm := make([]int, n+1)
	for i := range perm {
		perm[i] = i
	}
	return AuditRequest{
		Dataset: datasetID,
		Ranker:  RankerSpec{Ranking: perm},
		Params: rankfair.AuditParams{
			Measure: rankfair.MeasureGlobal, MinSize: 2, KMin: n, KMax: n, Lower: []int{n/2 + 1},
		},
	}
}

// TestChaosAppendRollsBackOnInjectedWriteError: an ENOSPC mid-append
// must fail the request with a storage error and leave both tiers on the
// pre-append generation — including the caches, which before this PR
// were invalidated before the persist and so lost valid entries to a
// failed append.
func TestChaosAppendRollsBackOnInjectedWriteError(t *testing.T) {
	svc, inj := chaosService(t, t.TempDir(), Config{})
	info, _, err := svc.Registry().Add("ds", biasedCSV(60), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.persistSeed(info, biasedCSV(60), rankfair.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	// Warm the result cache so we can prove a failed append leaves it alone.
	view, err := svc.SubmitAudit(AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Params: rankfair.AuditParams{Measure: "prop", MinSize: 5, KMin: 5, KMax: 20, Alpha: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if final, err := svc.Jobs().Wait(ctx, view.ID); err != nil || final.Status != JobDone {
		t.Fatalf("warm-up audit: %v / %+v", err, final)
	}
	missesBefore := svc.Cache().Stats().Misses

	inj.Add(fault.Rule{Op: "write", Path: "blobs", Count: 1, Err: syscall.ENOSPC})
	_, err = svc.AppendRows(info.ID, "text/csv", []byte("F,N,1\n"))
	if err == nil {
		t.Fatal("append under injected ENOSPC succeeded")
	}
	var se *StorageError
	if !errors.As(err, &se) {
		t.Fatalf("append failure is %T (%v), want *StorageError", err, err)
	}
	_, cur, ok := svc.getDataset(info.ID)
	if !ok || cur.Version != 1 || cur.Hash != info.Hash {
		t.Fatalf("dataset after failed append = v%d %.12s, want untouched v1", cur.Version, cur.Hash)
	}

	// The cached audit must still hit: the rollback may not have
	// invalidated entries for a generation that never advanced.
	view, err = svc.SubmitAudit(AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Params: rankfair.AuditParams{Measure: "prop", MinSize: 5, KMin: 5, KMax: 20, Alpha: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if final, err := svc.Jobs().Wait(ctx, view.ID); err != nil || final.Status != JobDone {
		t.Fatalf("post-rollback audit: %v / %+v", err, final)
	}
	if misses := svc.Cache().Stats().Misses; misses != missesBefore {
		t.Errorf("failed append evicted the result cache: misses %d -> %d", missesBefore, misses)
	}

	// The fault rule is spent: the retried append must land cleanly.
	resp, err := svc.AppendRows(info.ID, "text/csv", []byte("F,N,1\n"))
	if err != nil {
		t.Fatalf("retried append failed: %v", err)
	}
	if resp.Dataset.Version != 2 {
		t.Fatalf("retried append produced v%d, want v2", resp.Dataset.Version)
	}
}

// TestChaosBreakerTripsAndRecovers drives the full breaker cycle on a
// persistently failing disk: consecutive append failures open it, open
// writes shed fast with 503 store_unavailable while reads keep serving
// (degraded mode, visible on /healthz), and once the disk heals a
// half-open probe closes it again.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	svc, inj := chaosService(t, t.TempDir(), Config{BreakerThreshold: 2})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	info := upload(t, ts, biasedCSV(60))

	// Every manifest write fails: each append is one infra failure.
	inj.Add(fault.Rule{Op: "write", Path: "MANIFEST", Err: syscall.EIO})
	for i := 0; i < 2; i++ {
		if _, err := svc.AppendRows(info.ID, "text/csv", []byte("F,N,1\n")); err == nil {
			t.Fatalf("append %d under injected EIO succeeded", i)
		}
	}
	if got := svc.breaker.State(); got != breakerOpen {
		t.Fatalf("breaker state after %d infra failures = %d, want open", 2, got)
	}

	// Open breaker: writes shed without touching the disk.
	resp, err := http.Post(ts.URL+"/v1/datasets/"+info.ID+"/rows", "text/csv", bytes.NewReader([]byte("F,N,1\n")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append with open breaker: status %d body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(CodeStoreUnavailable)) {
		t.Fatalf("append with open breaker returned %s, want code %s", body, CodeStoreUnavailable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("store_unavailable response carries no Retry-After")
	}

	// Degraded mode: reads still serve, health reports it.
	resp, err = http.Get(ts.URL + "/v1/datasets/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read in degraded mode: status %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Store  string `json:"store"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Status != "degraded" || health.Store == "closed" {
		t.Fatalf("healthz in degraded mode = %+v, want degraded with a non-closed store", health)
	}

	// Disk heals; after the cooldown one probe write closes the breaker.
	inj.Reset()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := svc.AppendRows(info.ID, "text/csv", []byte("F,N,1\n")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after the disk healed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := svc.breaker.State(); got != breakerClosed {
		t.Fatalf("breaker state after successful probe = %d, want closed", got)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz after recovery = %+v (status %d), want ok", health, code)
	}
}

// TestChaosDeadlineExceededTypedEnvelope: an audit whose budget expires
// mid-search must fail with the typed deadline_exceeded code, a
// partial-work message naming how far the traversal got, and do so near
// the budget — not after the full multi-second worst-case search.
func TestChaosDeadlineExceededTypedEnvelope(t *testing.T) {
	const n = 21 // full serial search takes several seconds
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	info, _, err := svc.Registry().Add("worst", worstCaseCSV(t, n), rankfair.CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}

	const budget = 500 * time.Millisecond
	req := worstCaseRequest(info.ID, n)
	req.DeadlineMS = budget.Milliseconds()
	start := time.Now()
	view, err := svc.SubmitAudit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.Jobs().Wait(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if final.Status != JobFailed || final.ErrorCode != CodeDeadlineExceeded {
		t.Fatalf("deadline audit ended %s/%s (%s), want failed/%s",
			final.Status, final.ErrorCode, final.Error, CodeDeadlineExceeded)
	}
	if !regexp.MustCompile(`node expansions`).MatchString(final.Error) {
		t.Errorf("error %q carries no partial-work progress", final.Error)
	}
	if elapsed > 2*budget {
		t.Errorf("deadline audit took %v, want <= 2x the %v budget", elapsed, budget)
	}
	if final.BudgetMS != budget.Milliseconds() {
		t.Errorf("job view budget_ms = %d, want %d", final.BudgetMS, budget.Milliseconds())
	}

	// The report endpoint maps the typed failure to 504.
	resp, err := http.Get(ts.URL + "/v1/audits/" + view.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout || !bytes.Contains(body, []byte(CodeDeadlineExceeded)) {
		t.Fatalf("report of deadlined audit: status %d body %s, want 504 %s",
			resp.StatusCode, body, CodeDeadlineExceeded)
	}

	// The X-Deadline-Ms header is the other way in; a zero-budget body
	// inherits it, and an unparseable value is a 400.
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/audits", bytes.NewReader(mustJSON(t, worstCaseRequest(info.ID, n))))
	hreq.Header.Set("X-Deadline-Ms", "250")
	resp, err = http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var hview JobView
	if err := json.NewDecoder(resp.Body).Decode(&hview); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || hview.BudgetMS != 250 {
		t.Fatalf("header deadline: status %d budget_ms %d, want 202 / 250", resp.StatusCode, hview.BudgetMS)
	}
	svc.Jobs().Cancel(hview.ID)
	hreq, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/audits", bytes.NewReader(mustJSON(t, worstCaseRequest(info.ID, n))))
	hreq.Header.Set("X-Deadline-Ms", "soon")
	resp, err = http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed X-Deadline-Ms: status %d, want 400", resp.StatusCode)
	}
}

// TestChaosDeadlineStormShedsWithoutLeaks floods a one-worker manager
// with short-deadline jobs: expired queued jobs must shed at dequeue
// (typed, without running), at least one running job must deadline, and
// the storm must not leak goroutines.
func TestChaosDeadlineStormShedsWithoutLeaks(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	m := NewManager(1, 64)
	run := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	}
	const storm = 40
	ids := make([]string, 0, storm)
	for i := 0; i < storm; i++ {
		view, err := m.Submit("ds", rankfair.AuditParams{}, run, WithBudget(10*time.Millisecond))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, view.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := m.Wait(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	st := m.Stats()
	if st.Shed == 0 {
		t.Error("no queued job was shed by its expired deadline")
	}
	if st.DeadlineExceeded == 0 {
		t.Error("no running job was deadline-exceeded")
	}
	if st.Shed+st.DeadlineExceeded != st.Failed || st.Failed+st.Completed+st.Canceled != storm {
		t.Errorf("stats don't add up: %+v", st)
	}
	for _, id := range ids {
		v, _ := m.Get(id)
		if v.Status == JobFailed && v.ErrorCode != CodeShed && v.ErrorCode != CodeDeadlineExceeded {
			t.Errorf("job %s failed with code %q, want typed shed/deadline_exceeded", id, v.ErrorCode)
		}
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Goroutine hygiene: everything the storm spawned must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before storm, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosPageInRetriesTransientReads: a transient blob-read error
// during a restart page-in must be retried in place instead of failing
// the dataset load.
func TestChaosPageInRetriesTransientReads(t *testing.T) {
	dir := t.TempDir()
	seed := biasedCSV(60)
	svc1, _ := chaosService(t, dir, Config{})
	info, _, err := svc1.Registry().Add("ds", seed, rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc1.persistSeed(info, seed, rankfair.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.AppendRows(info.ID, "text/csv", []byte("F,N,1\n")); err != nil {
		t.Fatal(err)
	}
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2, inj := chaosService(t, dir, Config{})
	inj.Add(fault.Rule{Op: "readfile", Path: "blobs", Count: 1, Err: syscall.EAGAIN, Transient: true})
	_, cur, ok := svc2.getDataset(info.ID)
	if !ok {
		t.Fatal("page-in failed under a single transient read error")
	}
	if cur.Version != 2 {
		t.Fatalf("paged-in dataset is v%d, want v2", cur.Version)
	}
	if got := svc2.obs.storeRetries.Value(); got == 0 {
		t.Error("transient read error was not counted as a retry")
	}
}

// TestChaosClientDisconnectCancelsAudit: a client that submits with
// ?wait=true and hangs up mid-search must leave behind a canceled job
// (not a failed one) and a "canceled" request-error metric, not a 5xx.
func TestChaosClientDisconnectCancelsAudit(t *testing.T) {
	const n = 19 // ~1s serial search: a wide cancel-while-running window
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	info, _, err := svc.Registry().Add("worst", worstCaseCSV(t, n), rankfair.CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}

	reqCtx, hangUp := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		ts.URL+"/v1/audits?wait=true", bytes.NewReader(mustJSON(t, worstCaseRequest(info.ID, n))))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	// Hang up once the audit is actually running.
	deadline := time.Now().Add(10 * time.Second)
	var jobID string
	for jobID == "" {
		if time.Now().After(deadline) {
			t.Fatal("audit never started running")
		}
		for _, v := range svc.Jobs().List() {
			if v.Status == JobRunning {
				jobID = v.ID
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	hangUp()
	if err := <-done; err == nil {
		t.Fatal("canceled wait=true request returned without error")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.Jobs().Wait(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobCanceled {
		t.Fatalf("job after client disconnect ended %s (%s), want canceled", final.Status, final.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := labeledMetricValue(t, raw, "rankfaird_request_errors_total", "class", "canceled"); got == 0 {
		t.Error("client disconnect not counted in the canceled request-error class")
	}
	if got := labeledMetricValue(t, raw, "rankfaird_request_errors_total", "class", "5xx"); got != 0 {
		t.Errorf("client disconnect counted as %d server errors", got)
	}
}

// TestChaosAdmissionShedsByClass: with a tiny inflight cap, a second
// concurrent audit must shed with 503/shed while reads still serve —
// audits hit their lower class limit first.
func TestChaosAdmissionShedsByClass(t *testing.T) {
	const n = 19                                                         // the holder's audit must outlive the shed/read probes below
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 4, MaxInflight: 2}) // audit class limit: 1
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	info, _, err := svc.Registry().Add("worst", worstCaseCSV(t, n), rankfair.CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only audit slot with a wait=true submit.
	holdCtx, release := context.WithCancel(context.Background())
	t.Cleanup(release)
	req, _ := http.NewRequestWithContext(holdCtx, http.MethodPost,
		ts.URL+"/v1/audits?wait=true", bytes.NewReader(mustJSON(t, worstCaseRequest(info.ID, n))))
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for svc.obs.inflightGauge.With("audit").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder request never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/audits", "application/json", bytes.NewReader(mustJSON(t, worstCaseRequest(info.ID, n))))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(`"`+CodeShed+`"`)) {
		t.Fatalf("second audit: status %d body %s, want 503 %s", resp.StatusCode, body, CodeShed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After")
	}

	// Reads and operational endpoints still serve under the same load.
	for _, path := range []string{"/v1/datasets", "/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s while audits shed: status %d", path, resp.StatusCode)
		}
	}
	release()
	for _, v := range svc.Jobs().List() {
		svc.Jobs().Cancel(v.ID)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// labeledMetricValue extracts one labeled series value from a Prometheus
// text exposition, returning 0 when the series is absent.
func labeledMetricValue(t *testing.T, raw []byte, name, label, value string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{` + regexp.QuoteMeta(label) + `="` + regexp.QuoteMeta(value) + `"\} (\d+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		return 0
	}
	v, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return v
}
