package synth

import (
	"math"

	"rankfair/internal/dataset"
	"rankfair/internal/rank"
)

// DefaultStudentRows matches the Math fragment of the UCI Student
// Performance dataset used in the paper (395 tuples, 33 attributes).
const DefaultStudentRows = 395

// Students generates a synthetic Student Performance dataset with the UCI
// schema (33 categorical attributes) and the correlation structure the
// paper's case studies rely on: the final grade G3 drives the ranking,
// G1/G2 are noisy copies of G3, and G3 correlates positively with mother's
// education and study time and negatively with past failures and going out.
// Grades are additionally exposed as the numeric column G3_score for the
// ranker.
func Students(n int, seed int64) *Bundle {
	g := newGen(seed)

	school := make([]string, n)
	sex := make([]string, n)
	age := make([]string, n)
	address := make([]string, n)
	famsize := make([]string, n)
	pstatus := make([]string, n)
	medu := make([]string, n)
	fedu := make([]string, n)
	mjob := make([]string, n)
	fjob := make([]string, n)
	reason := make([]string, n)
	guardian := make([]string, n)
	traveltime := make([]string, n)
	studytime := make([]string, n)
	failures := make([]string, n)
	schoolsup := make([]string, n)
	famsup := make([]string, n)
	paid := make([]string, n)
	activities := make([]string, n)
	nursery := make([]string, n)
	higher := make([]string, n)
	internet := make([]string, n)
	romantic := make([]string, n)
	famrel := make([]string, n)
	freetime := make([]string, n)
	goout := make([]string, n)
	dalc := make([]string, n)
	walc := make([]string, n)
	health := make([]string, n)
	absences := make([]string, n)
	g1 := make([]string, n)
	g2 := make([]string, n)
	g3 := make([]string, n)
	g3score := make([]float64, n)

	eduLabels := []string{"none", "primary", "middle", "secondary", "higher"}
	jobLabels := []string{"at_home", "health", "other", "services", "teacher"}
	reasonLabels := []string{"course", "home", "other", "reputation"}
	guardianLabels := []string{"father", "mother", "other"}
	yesNo := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}

	for i := 0; i < n; i++ {
		// Latent socioeconomic status and academic ability; ability is
		// partly explained by status, matching the paper's finding that
		// mother's education correlates with the final grade.
		ses := g.normal(0, 1)
		ability := 0.55*ses + g.normal(0, 0.9)

		school[i] = "GP"
		if g.bern(0.12) {
			school[i] = "MS"
		}
		sex[i] = "F"
		if g.bern(0.47) {
			sex[i] = "M"
		}
		ageV := 15 + g.poissonish(1.7-0.4*ability, 7)
		if ageV > 22 {
			ageV = 22
		}
		age[i] = ordinalLabels(23)[ageV]
		address[i] = "U"
		if g.bern(0.22 - 0.05*ses) {
			address[i] = "R"
		}
		famsize[i] = "GT3"
		if g.bern(0.29) {
			famsize[i] = "LE3"
		}
		pstatus[i] = "T"
		if g.bern(0.10) {
			pstatus[i] = "A"
		}
		meduV := eduFromSES(g, ses)
		feduV := eduFromSES(g, 0.8*ses+0.2*g.normal(0, 1))
		medu[i] = eduLabels[meduV]
		fedu[i] = eduLabels[feduV]
		mjob[i] = jobLabels[jobFromEdu(g, meduV)]
		fjob[i] = jobLabels[jobFromEdu(g, feduV)]
		reason[i] = reasonLabels[g.choice([]float64{0.37, 0.28, 0.09, 0.26})]
		guardian[i] = guardianLabels[g.choice([]float64{0.23, 0.69, 0.08})]
		traveltime[i] = ordinalLabels(5)[1+g.choice([]float64{0.65, 0.27, 0.06, 0.02})]
		stV := 1 + g.choice([]float64{0.27 - 0.05*clamp(ability, -2, 2), 0.50, 0.16, 0.07})
		if stV < 1 {
			stV = 1
		}
		if stV > 4 {
			stV = 4
		}
		studytime[i] = ordinalLabels(5)[stV]
		failV := g.poissonish(clamp(0.35-0.35*ability, 0, 3), 3)
		failures[i] = ordinalLabels(4)[failV]
		schoolsup[i] = yesNo(g.bern(0.13))
		famsup[i] = yesNo(g.bern(0.61))
		paid[i] = yesNo(g.bern(0.46))
		activities[i] = yesNo(g.bern(0.51))
		nursery[i] = yesNo(g.bern(0.79))
		higher[i] = yesNo(g.bern(clamp(0.95+0.03*ability, 0, 1)))
		internet[i] = yesNo(g.bern(clamp(0.83+0.06*ses, 0, 1)))
		romantic[i] = yesNo(g.bern(0.33))
		famrel[i] = ordinalLabels(6)[1+g.choice([]float64{0.02, 0.05, 0.17, 0.49, 0.27})]
		freetime[i] = ordinalLabels(6)[1+g.choice([]float64{0.05, 0.16, 0.40, 0.29, 0.10})]
		gooutV := 1 + g.choice([]float64{0.06, 0.26, 0.33, 0.22, 0.13})
		goout[i] = ordinalLabels(6)[gooutV]
		dalc[i] = ordinalLabels(6)[1+g.choice([]float64{0.70, 0.19, 0.07, 0.02, 0.02})]
		walc[i] = ordinalLabels(6)[1+g.choice([]float64{0.38, 0.22, 0.20, 0.13, 0.07})]
		health[i] = ordinalLabels(6)[1+g.choice([]float64{0.12, 0.11, 0.23, 0.17, 0.37})]
		absV := g.poissonish(4.5, 40)
		absences[i] = absenceBucket(absV)

		grade := 10.4 + 2.6*ability + 0.6*ses - 1.4*float64(failV) +
			0.5*float64(stV) - 0.35*float64(gooutV) + g.normal(0, 1.4)
		gradeV := clamp(math.Round(grade), 0, 20)
		g3score[i] = gradeV
		g3[i] = gradeBucket(gradeV)
		g1[i] = gradeBucket(clamp(math.Round(gradeV+g.normal(0, 1.6)), 0, 20))
		g2[i] = gradeBucket(clamp(math.Round(gradeV+g.normal(0, 1.2)), 0, 20))
	}

	t := dataset.New()
	mustAddCat(t, "school", school)
	mustAddCat(t, "sex", sex)
	mustAddCat(t, "age", age)
	mustAddCat(t, "address", address)
	mustAddCat(t, "famsize", famsize)
	mustAddCat(t, "Pstatus", pstatus)
	mustAddCat(t, "Medu", medu)
	mustAddCat(t, "Fedu", fedu)
	mustAddCat(t, "Mjob", mjob)
	mustAddCat(t, "Fjob", fjob)
	mustAddCat(t, "reason", reason)
	mustAddCat(t, "guardian", guardian)
	mustAddCat(t, "traveltime", traveltime)
	mustAddCat(t, "studytime", studytime)
	mustAddCat(t, "failures", failures)
	mustAddCat(t, "schoolsup", schoolsup)
	mustAddCat(t, "famsup", famsup)
	mustAddCat(t, "paid", paid)
	mustAddCat(t, "activities", activities)
	mustAddCat(t, "nursery", nursery)
	mustAddCat(t, "higher", higher)
	mustAddCat(t, "internet", internet)
	mustAddCat(t, "romantic", romantic)
	mustAddCat(t, "famrel", famrel)
	mustAddCat(t, "freetime", freetime)
	mustAddCat(t, "goout", goout)
	mustAddCat(t, "Dalc", dalc)
	mustAddCat(t, "Walc", walc)
	mustAddCat(t, "health", health)
	mustAddCat(t, "absences", absences)
	mustAddCat(t, "G1", g1)
	mustAddCat(t, "G2", g2)
	mustAddCat(t, "G3", g3)
	mustAddNum(t, "G3_score", g3score)

	return &Bundle{
		Name:  "student",
		Table: t,
		Ranker: &rank.ByColumns{Keys: []rank.ColumnKey{
			{Column: "G3_score", Descending: true},
		}},
	}
}

// eduFromSES maps latent status to the UCI education scale 0-4.
func eduFromSES(g *gen, ses float64) int {
	v := 2.2 + 1.1*ses + g.normal(0, 0.7)
	return int(clamp(math.Round(v), 0, 4))
}

// jobFromEdu draws a job category skewed by education level.
func jobFromEdu(g *gen, edu int) int {
	switch {
	case edu >= 4:
		return g.choice([]float64{0.05, 0.20, 0.30, 0.20, 0.25})
	case edu >= 2:
		return g.choice([]float64{0.12, 0.08, 0.40, 0.30, 0.10})
	default:
		return g.choice([]float64{0.40, 0.02, 0.43, 0.13, 0.02})
	}
}

// gradeBucket renders a 0-20 grade into the 4 ranges the paper's value
// distribution plots use (Figure 10d).
func gradeBucket(v float64) string {
	switch {
	case v < 5:
		return "[0,5)"
	case v < 10:
		return "[5,10)"
	case v < 15:
		return "[10,15)"
	default:
		return "[15,20]"
	}
}

// absenceBucket renders an absence count into coarse ranges.
func absenceBucket(v int) string {
	switch {
	case v == 0:
		return "0"
	case v <= 4:
		return "[1,4]"
	case v <= 10:
		return "[5,10]"
	default:
		return ">10"
	}
}
