package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFairTopKBasic(t *testing.T) {
	// Six items, two groups; group 1 scores lower across the board.
	scores := []float64{90, 80, 70, 60, 50, 40}
	groups := []int{0, 0, 0, 1, 1, 1}
	// Unconstrained: top-3 is all group 0.
	sel, err := FairTopK(scores, groups, 3, []FairTopKConstraint{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 0 || sel[1] != 1 || sel[2] != 2 {
		t.Errorf("unconstrained selection = %v", sel)
	}
	// Lower bound of 1 on group 1 displaces the weakest group-0 member.
	sel, err = FairTopK(scores, groups, 3, []FairTopKConstraint{{}, {Lower: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3}
	for i, w := range want {
		if sel[i] != w {
			t.Fatalf("constrained selection = %v, want %v", sel, want)
		}
	}
	// Upper bound of 1 on group 0.
	sel, err = FairTopK(scores, groups, 3, []FairTopKConstraint{{Upper: 1}, {}})
	if err != nil {
		t.Fatal(err)
	}
	want = []int{0, 3, 4}
	for i, w := range want {
		if sel[i] != w {
			t.Fatalf("capped selection = %v, want %v", sel, want)
		}
	}
}

func TestFairTopKErrors(t *testing.T) {
	scores := []float64{1, 2, 3}
	groups := []int{0, 1, 0}
	cases := []struct {
		name        string
		k           int
		groups      []int
		constraints []FairTopKConstraint
	}{
		{"k too big", 4, groups, []FairTopKConstraint{{}, {}}},
		{"k zero", 0, groups, []FairTopKConstraint{{}, {}}},
		{"bad group id", 2, []int{0, 5, 0}, []FairTopKConstraint{{}, {}}},
		{"group length", 2, []int{0, 1}, []FairTopKConstraint{{}, {}}},
		{"lower above size", 2, groups, []FairTopKConstraint{{}, {Lower: 2}}},
		{"lower above upper", 2, groups, []FairTopKConstraint{{Lower: 2, Upper: 1}, {}}},
		{"lower sum above k", 2, groups, []FairTopKConstraint{{Lower: 2}, {Lower: 1}}},
		{"uppers below k", 3, groups, []FairTopKConstraint{{Upper: 1}, {Upper: 1}}},
		{"negative lower", 2, groups, []FairTopKConstraint{{Lower: -1}, {}}},
	}
	for _, c := range cases {
		if _, err := FairTopK(scores, c.groups, c.k, c.constraints); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestQuickFairTopKOptimal: the greedy selection is score-optimal among
// all feasible selections (verified by exhaustive enumeration on small
// instances) and respects every bound.
func TestQuickFairTopKOptimal(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := 2 + rng.Intn(2)
		scores := make([]float64, n)
		groups := make([]int, n)
		sizes := make([]int, g)
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*100) / 4 // ties possible
			groups[i] = rng.Intn(g)
			sizes[groups[i]]++
		}
		k := 1 + rng.Intn(n)
		constraints := make([]FairTopKConstraint, g)
		lowerSum := 0
		for gi := range constraints {
			maxL := min(sizes[gi], k-lowerSum)
			if maxL > 0 && rng.Intn(2) == 0 {
				constraints[gi].Lower = rng.Intn(maxL + 1)
			}
			lowerSum += constraints[gi].Lower
		}
		sel, err := FairTopK(scores, groups, k, constraints)
		if err != nil {
			return true // infeasible instances are allowed to error
		}
		if len(sel) != k {
			return false
		}
		counts := make([]int, g)
		total := 0.0
		seen := map[int]bool{}
		for _, i := range sel {
			if seen[i] {
				return false
			}
			seen[i] = true
			counts[groups[i]]++
			total += scores[i]
		}
		for gi, c := range constraints {
			upper := c.Upper
			if upper <= 0 {
				upper = k
			}
			if counts[gi] < c.Lower || counts[gi] > upper {
				return false
			}
		}
		// Exhaustive optimum.
		best := -1.0
		idx := make([]int, 0, k)
		var rec func(start int)
		rec = func(start int) {
			if len(idx) == k {
				cnt := make([]int, g)
				sum := 0.0
				for _, i := range idx {
					cnt[groups[i]]++
					sum += scores[i]
				}
				for gi, c := range constraints {
					upper := c.Upper
					if upper <= 0 {
						upper = k
					}
					if cnt[gi] < c.Lower || cnt[gi] > upper {
						return
					}
				}
				if sum > best {
					best = sum
				}
				return
			}
			for i := start; i < n; i++ {
				idx = append(idx, i)
				rec(i + 1)
				idx = idx[:len(idx)-1]
			}
		}
		rec(0)
		return math.Abs(total-best) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
