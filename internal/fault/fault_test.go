package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestInjectorSkipCountWindow(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Op: "write", Skip: 2, Count: 2, Err: syscall.EIO})
	var errs []bool
	for i := 0; i < 6; i++ {
		errs = append(errs, in.Fire("write", "x").Err != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("call %d: fired=%v, want %v (window Skip=2 Count=2)", i, errs[i], want[i])
		}
	}
	if got := in.Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

func TestInjectorMatchesOpAndPathSubstring(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Op: "write", Path: "MANIFEST", Err: syscall.ENOSPC})
	if out := in.Fire("sync", "dir/MANIFEST"); out.Err != nil {
		t.Fatal("rule fired on wrong op")
	}
	if out := in.Fire("write", "dir/blobs/ab12"); out.Err != nil {
		t.Fatal("rule fired on wrong path")
	}
	out := in.Fire("write", "dir/MANIFEST")
	if out.Err == nil {
		t.Fatal("rule did not fire on matching op+path")
	}
	var fe *Error
	if !errors.As(out.Err, &fe) {
		t.Fatalf("injected error %T is not *fault.Error", out.Err)
	}
	if !errors.Is(out.Err, syscall.ENOSPC) {
		t.Fatal("injected error does not unwrap to ENOSPC")
	}
	if fe.Transient() {
		t.Fatal("ENOSPC rule without Transient mark reported transient")
	}
}

func TestInjectorTransientMark(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Err: syscall.EAGAIN, Transient: true})
	out := in.Fire("readfile", "blob")
	var tr interface{ Transient() bool }
	if !errors.As(out.Err, &tr) || !tr.Transient() {
		t.Fatalf("transient rule produced non-transient error %v", out.Err)
	}
}

func TestInjectorProbabilisticDeterminism(t *testing.T) {
	fire := func(seed int64) []bool {
		in := NewInjector(seed)
		in.Add(Rule{P: 0.5, Err: syscall.EIO})
		var got []bool
		for i := 0; i < 32; i++ {
			got = append(got, in.Fire("write", "x").Err != nil)
		}
		return got
	}
	a, b := fire(42), fire(42)
	anyFired, anyPassed := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		anyFired = anyFired || a[i]
		anyPassed = anyPassed || !a[i]
	}
	if !anyFired || !anyPassed {
		t.Fatal("p=0.5 over 32 calls should both fire and pass at least once")
	}
}

func TestInjectorLatencyOnly(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Op: "sync", Latency: 20 * time.Millisecond})
	start := time.Now()
	out := in.Fire("sync", "x")
	if out.Err != nil {
		t.Fatalf("latency-only rule injected error %v", out.Err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("latency rule slept %v, want >= 20ms", elapsed)
	}
	if in.Fired() != 0 {
		t.Fatal("latency-only firing counted as an injected error")
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(1)
	ffs := NewFaultFS(OS{}, in)
	f, err := ffs.OpenFile(filepath.Join(dir, "MANIFEST"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first\n")); err != nil {
		t.Fatal(err)
	}
	in.Add(Rule{Op: "write", Path: "MANIFEST", Count: 1, Torn: 3, Err: syscall.EIO})
	n, err := f.Write([]byte("second\n"))
	if err == nil {
		t.Fatal("torn write did not return the injected error")
	}
	if n != 3 {
		t.Fatalf("torn write reported %d bytes, want 3", n)
	}
	if _, err := f.Write([]byte("third\n")); err != nil {
		t.Fatalf("write after exhausted rule failed: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "first\nsecthird\n" {
		t.Fatalf("file content %q: torn bytes or follow-up write landed wrong", raw)
	}
}

func TestFaultFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, NewInjector(1))
	sub := filepath.Join(dir, "blobs")
	if err := ffs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := ffs.CreateTemp(sub, "tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(sub, "final")
	if err := ffs.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	raw, err := ffs.ReadFile(dst)
	if err != nil || string(raw) != "payload" {
		t.Fatalf("ReadFile = %q, %v", raw, err)
	}
	if st, err := ffs.Stat(dst); err != nil || st.Size() != 7 {
		t.Fatalf("Stat = %v, %v", st, err)
	}
	if err := ffs.Truncate(dst, 3); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Remove(dst); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("op=write,path=MANIFEST,skip=3,count=1,torn=10,err=eio; op=readfile,err=eagain,latency=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.Op != "write" || r.Path != "MANIFEST" || r.Skip != 3 || r.Count != 1 || r.Torn != 10 {
		t.Fatalf("rule 0 mis-parsed: %+v", r)
	}
	if !errors.Is(r.Err, syscall.EIO) || r.Transient {
		t.Fatalf("rule 0 error mis-parsed: err=%v transient=%v", r.Err, r.Transient)
	}
	if !errors.Is(rules[1].Err, syscall.EAGAIN) || !rules[1].Transient || rules[1].Latency != 5*time.Millisecond {
		t.Fatalf("rule 1 mis-parsed: %+v", rules[1])
	}
	if _, err := ParseSpec("op=write,err=bogus"); err == nil {
		t.Fatal("unknown error name parsed without error")
	}
	if _, err := ParseSpec("nonsense"); err == nil {
		t.Fatal("non key=value field parsed without error")
	}
	if _, err := ParseSpec("op=write,transient=false,err=eagain"); err != nil {
		t.Fatal(err)
	} else if r, _ := ParseSpec("op=write,transient=false,err=eagain"); r[0].Transient {
		t.Fatal("explicit transient=false overridden by err default")
	}
}
